"""EXP-A4: interest gating on vs off (paper characteristic #1).

"Messages are issued only if there are entities interested in tracking an
entity."  With nobody tracking, the gated broker publishes nothing but
lifecycle traces; an ungated broker publishes every heartbeat into the
void.
"""

from __future__ import annotations

from conftest import run_once
from repro.bench.experiments.ablations import run_interest_gating_ablation


def test_ablation_interest_gating(benchmark, report):
    results = run_once(benchmark, run_interest_gating_ablation)

    by_mode = {r.gated: r for r in results}
    gated, ungated = by_mode[True], by_mode[False]
    lines = [
        "EXP-A4: interest gating (8 untracked entities, 60 s)",
        "=" * 52,
        f"{'mode':<14s} {'published':>10s} {'suppressed':>11s}",
        "-" * 38,
        f"{'gated (§3.5)':<14s} {gated.published:>10d} {gated.suppressed:>11d}",
        f"{'ungated':<14s} {ungated.published:>10d} {ungated.suppressed:>11d}",
        "",
        f"gating avoided {ungated.published - gated.published} signed "
        "publications that nobody would have received.",
    ]
    report("ablation_interest_gating", "\n".join(lines))

    # gating suppresses nearly everything when nobody listens; without it
    # every heartbeat is signed and published anyway
    assert gated.suppressed > 0
    assert ungated.suppressed == 0
    assert ungated.published > 5 * gated.published
