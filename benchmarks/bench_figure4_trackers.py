"""EXP-F4: Figure 4 — trace time while increasing the number of trackers.

"As can be seen the trace time increases very slowly with an increase in
the number of trackers.  This demonstrates the capability of the system to
track entities without overloading the brokers."
"""

from __future__ import annotations

from conftest import run_once
from repro.bench.experiments.trackers import growth_ratio, run_trackers_sweep
from repro.bench.tables import render_series
from repro.transport.tcp import TCP_CLUSTER
from repro.transport.udp import UDP_CLUSTER

COUNTS = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
DURATION_MS = 60_000.0


def _run_both():
    return {
        "TCP": run_trackers_sweep(
            counts=COUNTS, profile=TCP_CLUSTER, duration_ms=DURATION_MS
        ),
        "UDP": run_trackers_sweep(
            counts=COUNTS, profile=UDP_CLUSTER, duration_ms=DURATION_MS
        ),
    }


def test_figure4_trackers(benchmark, report, save_figure):
    by_transport = run_once(benchmark, _run_both)

    series = {}
    for transport, results in by_transport.items():
        series[f"{transport} trace time (ms)"] = [
            (r.tracker_count, r.summary.mean) for r in results
        ]
    routing_lines = ["", "routing counters per case:"]
    for transport, results in by_transport.items():
        for r in results:
            if r.routing is not None:
                routing_lines.append(
                    f"  {transport} N={r.tracker_count:<3d} {r.routing.render()}"
                )
    report(
        "figure4_trackers",
        render_series(
            "Figure 4: trace time vs number of trackers", "trackers", series
        )
        + "\n".join(routing_lines),
    )
    from repro.bench.svgplot import series_dict_to_svg

    save_figure(
        "figure4_trackers",
        series_dict_to_svg(
            "Figure 4: trace time vs number of trackers",
            "trackers", "trace time (ms)", series, y_from_zero=True,
        ),
    )

    for transport, results in by_transport.items():
        # the paper's claim: growth is slow — a 10x tracker population
        # costs well under 25% extra trace latency
        ratio = growth_ratio(results)
        assert ratio < 1.25, (
            f"{transport}: trace time grew {ratio:.2f}x from 10 to 100 trackers"
        )
        # ... and every tracker population still delivers promptly
        assert all(r.summary.mean < 120.0 for r in results)

    # UDP sits below TCP throughout, as in every other figure
    for tcp_result, udp_result in zip(by_transport["TCP"], by_transport["UDP"], strict=True):
        assert udp_result.summary.mean < tcp_result.summary.mean
