"""EXP-A5: failure-detector threshold sensitivity (section 3.3).

Monte Carlo over the detector machinery on a 12%-lossy link: how the
"set of successive pings" thresholds trade false alarms against
detection speed, and why the defaults (3 suspicion / 6 failure) sit
where they do.  Also documents the structural constraint that the
failure threshold cannot exceed the 10-ping history window.
"""

from __future__ import annotations

from conftest import run_once
from repro.bench.experiments.ablations import run_threshold_sensitivity


def test_ablation_thresholds(benchmark, report):
    results = run_once(benchmark, run_threshold_sensitivity)

    lines = [
        "EXP-A5: detector thresholds on a 12%-lossy link (5000 ping rounds)",
        "=" * 67,
        f"{'susp/fail':>10s} {'false suspicions':>17s} {'false failures':>15s} "
        f"{'crash detection':>16s}",
        "-" * 62,
    ]
    for r in results:
        detect = (
            f"{r.detection_ms_after_real_crash:.0f} ms"
            if r.detection_ms_after_real_crash is not None
            else "never"
        )
        lines.append(
            f"{r.suspicion_threshold:>4d}/{r.failure_threshold:<5d} "
            f"{r.false_suspicions:>17d} {r.false_failures:>15d} {detect:>16s}"
        )
    lines += [
        "",
        "Trade-off: hair-trigger thresholds detect a crash ~2x faster but",
        "cry wolf hundreds of times on a lossy link (including outright",
        "false FAILED verdicts); the paper's defaults are the knee of the",
        "curve.  Thresholds above the 10-ping history window are rejected",
        "at construction — they could never fire.",
    ]
    report("ablation_thresholds", "\n".join(lines))

    ordered = sorted(results, key=lambda r: r.failure_threshold)
    # detection slows monotonically as thresholds rise ...
    detections = [r.detection_ms_after_real_crash for r in ordered]
    assert all(d is not None for d in detections)
    assert detections == sorted(detections)
    # ... while false alarms fall monotonically
    false_rates = [r.false_suspicions for r in ordered]
    assert false_rates == sorted(false_rates, reverse=True)
    # the hair-trigger config produces false FAILED verdicts; the default
    # and conservative configs never do
    assert ordered[0].false_failures > 0
    assert ordered[1].false_failures == 0
    assert ordered[2].false_failures == 0
