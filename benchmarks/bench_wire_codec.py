"""Hot-path before/after benchmark: pluggable wire codecs.

Runs the ping-heavy co-located scenario (``repro.bench.hotpath``) twice
from the same seed — once under the legacy-equivalent ``json`` codec and
once under the ``compact`` binary codec — and commits both registry
snapshots plus their rendered diff under ``benchmarks/results/``:

* ``wire_codec_before.json`` / ``wire_codec_after.json`` — full
  snapshots, diffable any time with
  ``repro metrics --diff wire_codec_before.json wire_codec_after.json``;
  the ``perf-gate`` CI job replays the scenario against these baselines
  (``python -m repro.bench.perf_gate``).
* ``wire_codec_diff.txt`` — the rendered per-instrument delta table

The assertions encode the acceptance bar from docs/WIRE_FORMAT.md: the
compact codec must cut ``transport.bytes.sent`` by at least 25 %, the
size memo must absorb broker re-encodes, and detection behaviour must
stay identical across codecs (no false failure verdicts either way).
"""

from __future__ import annotations

import json
import pathlib

from conftest import run_once

from repro.bench.hotpath import run_ping_heavy
from repro.bench.perf_gate import check_regressions
from repro.obs import diff_snapshots, render_diff

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SEED = 42
DURATION_MS = 60_000.0


def _write_snapshot(name: str, snapshot: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")


def test_compact_codec_pays_off(benchmark, report):
    before = run_ping_heavy(seed=SEED, duration_ms=DURATION_MS, codec="json")
    after = run_once(
        benchmark, run_ping_heavy, seed=SEED, duration_ms=DURATION_MS, codec="compact"
    )
    _write_snapshot("wire_codec_before", before)
    _write_snapshot("wire_codec_after", after)

    diff = diff_snapshots(before, after)
    table = render_diff(diff)
    (RESULTS_DIR / "wire_codec_diff.txt").write_text(table + "\n")

    bytes_before = before["counters"]["transport.bytes.sent"]
    bytes_after = after["counters"]["transport.bytes.sent"]
    memo_hits = after["counters"].get("codec.encode.memo.hit", 0)
    memo_misses = after["counters"].get("codec.encode.memo.miss", 0)

    report(
        "bench_wire_codec",
        "\n".join(
            [
                "wire codec swap (ping-heavy co-located scenario)",
                f"  seed={SEED} duration={DURATION_MS:.0f}ms",
                f"  transport.bytes.sent: {bytes_before} -> {bytes_after} "
                f"({100.0 * (1.0 - bytes_after / bytes_before):.1f}% less)",
                f"  codec.encode.memo: hit={memo_hits} miss={memo_misses}",
                "",
                table,
            ]
        ),
    )

    # acceptance bar (ISSUE 6 / docs/WIRE_FORMAT.md): >= 25% byte cut
    assert bytes_after <= 0.75 * bytes_before
    # the memo must absorb broker re-encodes: every forwarded frame hits
    assert memo_hits >= after["counters"]["broker.msgs.forwarded_out"]
    # the perf gate built from these baselines passes against themselves
    assert check_regressions(before, before) == []
    assert check_regressions(after, after) == []
    # a codec swap must never change detection semantics
    for side in (before, after):
        latency = side["histograms"].get(
            "tracker.detection.latency_ms", {"count": 0}
        )
        assert latency.get("count", 0) == 0
