"""EXP-F5: Figure 5 — reduction of signing costs (section 6.3).

The traced entity replaces per-message signatures with encryption under a
secret key shared with its hosting broker; "the authorization enhancement
has reduced the tracing costs involved."
"""

from __future__ import annotations

from conftest import run_once
from repro.bench import paper_data
from repro.bench.experiments.hops import run_signing_opt_sweep
from repro.bench.tables import render_series
from repro.security.symmetric_opt import predicted_savings
from repro.crypto.costmodel import CryptoCostModel

DURATION_MS = 120_000.0


def test_figure5_signing_optimization(benchmark, report, save_figure):
    results = run_once(benchmark, run_signing_opt_sweep, duration_ms=DURATION_MS)

    series: dict[str, list[tuple[float, float]]] = {}
    for result in results:
        name = (
            "symmetric channel (6.3)" if result.symmetric_channel else "per-message signing"
        )
        series.setdefault(name, []).append((result.hops, result.summary.mean))

    from repro.bench.svgplot import series_dict_to_svg

    save_figure(
        "figure5_signing_opt",
        series_dict_to_svg(
            "Figure 5: per-message signing vs symmetric channel",
            "hops", "trace overhead (ms)", series,
        ),
    )
    prediction = predicted_savings(CryptoCostModel(seed=0))
    report(
        "figure5_signing_opt",
        render_series(
            "Figure 5: signing vs symmetric-channel optimization", "hops", series
        )
        + f"\n\nAnalytic prediction: the optimization saves "
        f"{prediction.savings_ms:.1f} ms per entity message "
        f"(sign {prediction.signing_entity_ms:.1f} -> encrypt "
        f"{prediction.symmetric_entity_ms:.2f} at the entity; verify "
        f"{prediction.signing_broker_ms:.1f} -> decrypt "
        f"{prediction.symmetric_broker_ms:.2f} at the broker).",
    )

    lo, hi = paper_data.EXPECTED_SYMMETRIC_OPT_SAVING_MS
    signed = {r.hops: r.summary.mean for r in results if not r.symmetric_channel}
    optimized = {r.hops: r.summary.mean for r in results if r.symmetric_channel}
    for hops in signed:
        saving = signed[hops] - optimized[hops]
        assert lo <= saving <= hi, (
            f"{hops} hops: optimization saved {saving:.2f} ms, outside "
            f"[{lo}, {hi}]"
        )
        # strictly below at every hop count, as in Figure 5
        assert optimized[hops] < signed[hops]
