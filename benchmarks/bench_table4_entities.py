"""EXP-T4: Table 4 — overhead while increasing the traced entities.

One broker, thirty trackers, and 10/20/30 traced entities colocated on a
single machine; the shared crypto workload inflates both the mean and the
deviation super-linearly, just as the paper reports (and explains:
"the security operations related to the generation of trace messages are
compute intensive ... performed by every traced entity for every trace").
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.bench import paper_data
from repro.bench.experiments.entities import run_entities_sweep
from repro.bench.tables import ComparisonRow, render_comparison

DURATION_MS = 45_000.0


def test_table4_entities(benchmark, report):
    results = run_once(benchmark, run_entities_sweep, duration_ms=DURATION_MS)

    rows = []
    for result in results:
        paper_mean, paper_std = paper_data.TABLE4_ENTITIES[result.entity_count]
        rows.append(
            ComparisonRow(
                label=f"{result.entity_count} traced entities",
                paper_mean=paper_mean,
                paper_std=paper_std,
                measured=result.summary,
            )
        )
    routing_lines = ["", "routing counters per case:"]
    for result in results:
        if result.routing is not None:
            routing_lines.append(
                f"  entities={result.entity_count:<3d} {result.routing.render()}"
            )
    report(
        "table4_entities",
        render_comparison(
            "Table 4: trace routing overhead by traced entities (TCP)", rows
        )
        + "\n".join(routing_lines),
    )

    ordered = sorted(results, key=lambda r: r.entity_count)
    means = [r.summary.mean for r in ordered]
    stds = [r.summary.std_dev for r in ordered]
    # monotone growth of mean and deviation with colocated entities
    assert means == sorted(means)
    assert stds == sorted(stds)
    # super-linear: the 20->30 jump exceeds the 10->20 jump
    assert means[2] - means[1] > means[1] - means[0]
    # each cell within 25% of the paper's mean
    for result in ordered:
        paper_mean, _ = paper_data.TABLE4_ENTITIES[result.entity_count]
        assert result.summary.mean == pytest.approx(paper_mean, rel=0.25)
