"""Counter / Gauge / Histogram semantics and the virtual-clock Timer."""

import pytest

from repro.obs import Counter, Gauge, Histogram, Timer
from repro.util.clock import VirtualClock
from repro.util.stats import summarize


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0

    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestGauge:
    def test_moves_both_directions(self):
        gauge = Gauge("g")
        gauge.inc(3.0)
        gauge.dec()
        assert gauge.value == 2.0
        gauge.set(-7.5)
        assert gauge.value == -7.5


class TestHistogram:
    def test_moments_match_summarize(self):
        samples = [0.3, 1.7, 12.0, 48.0, 120.0, 4_999.0]
        hist = Histogram("h")
        for value in samples:
            hist.observe(value)
        expected = summarize(samples)
        got = hist.summary()
        assert got.count == expected.count
        assert got.mean == pytest.approx(expected.mean)
        assert got.std_dev == pytest.approx(expected.std_dev)
        assert got.minimum == expected.minimum
        assert got.maximum == expected.maximum

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(5.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 1.0))

    def test_bucket_counts_include_overflow(self):
        hist = Histogram("h", bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 100.0):
            hist.observe(value)
        buckets = hist.bucket_counts()
        assert buckets["<=1"] == 1
        assert buckets["<=10"] == 1
        assert buckets["+inf"] == 1

    def test_percentile_stays_in_observed_range(self):
        hist = Histogram("h", bounds=(1.0, 10.0, 100.0))
        for value in (2.0, 3.0, 4.0, 5.0, 6.0):
            hist.observe(value)
        for q in (0.0, 50.0, 99.0, 100.0):
            assert 2.0 <= hist.percentile(q) <= 6.0

    def test_percentile_overflow_returns_max(self):
        hist = Histogram("h", bounds=(1.0,))
        hist.observe(500.0)
        hist.observe(900.0)
        assert hist.percentile(99.0) == 900.0

    def test_empty_percentile_raises(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(50.0)

    def test_to_dict_shapes(self):
        hist = Histogram("h")
        assert hist.to_dict() == {"count": 0}
        hist.observe(3.0)
        exported = hist.to_dict()
        assert exported["count"] == 1
        assert exported["mean"] == 3.0
        assert "p50" in exported and "buckets" in exported


class TestTimer:
    def test_measures_virtual_elapsed(self):
        clock = VirtualClock()
        hist = Histogram("t")
        timer = Timer(hist, clock)
        with timer:
            clock.advance_to(250.0)
        assert timer.last_ms == 250.0
        assert hist.count == 1
        assert hist.mean == 250.0

    def test_records_on_exception(self):
        clock = VirtualClock()
        hist = Histogram("t")
        with pytest.raises(RuntimeError):
            with Timer(hist, clock):
                clock.advance_to(10.0)
                raise RuntimeError("boom")
        assert hist.count == 1
        assert hist.mean == 10.0

    def test_works_across_generator_yields(self):
        clock = VirtualClock()
        hist = Histogram("t")

        def process():
            with Timer(hist, clock):
                yield "step"

        gen = process()
        next(gen)
        clock.advance_to(42.0)  # virtual time passes while suspended
        with pytest.raises(StopIteration):
            next(gen)
        assert hist.mean == 42.0

    def test_observe_span(self):
        hist = Histogram("t")
        timer = Timer(hist, VirtualClock())
        assert timer.observe_span(100.0, 130.0) == 30.0
        assert hist.count == 1
