"""EventJournal: typed records, filtering, text/JSON round-trip."""

from repro.obs import EventJournal, JournalRecord


class TestRecording:
    def test_typed_columns_and_fields(self):
        journal = EventJournal()
        entry = journal.record(
            12.5, "violation", topic="Constrained/Trace", principal="mallory",
            size_bytes=128, what="publish",
        )
        assert entry.topic == "Constrained/Trace"
        assert entry.principal == "mallory"
        assert entry.size_bytes == 128
        assert entry.details() == {
            "what": "publish",
            "topic": "Constrained/Trace",
            "principal": "mallory",
            "size_bytes": 128,
        }

    def test_filtering_and_kinds(self):
        journal = EventJournal()
        journal.record(1.0, "link.drop", size_bytes=64)
        journal.record(2.0, "violation", principal="eve")
        journal.record(3.0, "link.drop", size_bytes=96)
        assert len(journal) == 3
        assert [r.time_ms for r in journal.records("link.drop")] == [1.0, 3.0]
        assert journal.kinds() == {"link.drop": 2, "violation": 1}


class TestExport:
    def test_text_export_lines(self):
        journal = EventJournal()
        journal.record(5.0, "terminated", principal="mallory")
        journal.record(9.0, "terminated", principal="eve")
        text = journal.export_text(kind="terminated", limit=1)
        assert text == "t=9.000ms terminated principal=eve"

    def test_json_round_trip(self):
        journal = EventJournal()
        journal.record(1.5, "link.reorder", size_bytes=42, link="b1->b2")
        journal.record(2.5, "violation", principal="eve", what="subscribe")
        restored = EventJournal.from_json(journal.export_json())
        assert len(restored) == 2
        assert restored.records("violation")[0] == journal.records("violation")[0]
        first = restored.records("link.reorder")[0]
        assert first.size_bytes == 42
        assert first.fields["link"] == "b1->b2"

    def test_record_equality_is_structural(self):
        a = JournalRecord(1.0, "x", principal="p", fields={"k": "v"})
        b = JournalRecord(1.0, "x", principal="p", fields={"k": "v"})
        assert a == b
