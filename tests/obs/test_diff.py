"""Tests for snapshot diffing (repro.obs.diff)."""

import json

import pytest

from repro.errors import SerializationError
from repro.obs import MetricsRegistry, diff_snapshots, load_snapshot, render_diff


def snap(counters=None, gauges=None, histograms=None):
    return {
        "counters": counters or {},
        "gauges": gauges or {},
        "histograms": histograms or {},
    }


class TestLoadSnapshot:
    def test_loads_registry_snapshot(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("broker.msgs.delivered").inc(3)
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(registry.snapshot()))
        loaded = load_snapshot(str(path))
        assert loaded["counters"]["broker.msgs.delivered"] == 3

    def test_unwraps_bench_wrapper_and_normalizes_sections(self, tmp_path):
        path = tmp_path / "wrapped.json"
        path.write_text(json.dumps({"snapshot": {"counters": {"x.y": 1}}}))
        loaded = load_snapshot(str(path))
        assert loaded["counters"] == {"x.y": 1}
        assert loaded["gauges"] == {} and loaded["histograms"] == {}

    def test_missing_file_and_bad_json_raise_taxonomy_errors(self, tmp_path):
        with pytest.raises(SerializationError):
            load_snapshot(str(tmp_path / "absent.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(SerializationError):
            load_snapshot(str(bad))
        arr = tmp_path / "arr.json"
        arr.write_text("[1, 2]")
        with pytest.raises(SerializationError):
            load_snapshot(str(arr))


class TestDiffSnapshots:
    def test_counter_delta_and_pct(self):
        diff = diff_snapshots(
            snap(counters={"a.b": 10}), snap(counters={"a.b": 4})
        )
        entry = diff["counters"]["a.b"]
        assert entry == {"before": 10.0, "after": 4.0, "delta": -6.0, "pct": -60.0}

    def test_union_of_names_zero_fills(self):
        diff = diff_snapshots(
            snap(counters={"only.before": 2}), snap(counters={"only.after": 3})
        )
        assert diff["counters"]["only.before"]["after"] == 0.0
        assert diff["counters"]["only.after"]["before"] == 0.0
        # no baseline -> no percentage
        assert diff["counters"]["only.after"]["pct"] is None

    def test_histograms_compared_on_count_sum_mean(self):
        before = snap(histograms={"h.ms": {"count": 10, "mean": 2.0}})
        after = snap(histograms={"h.ms": {"count": 4, "mean": 2.5}})
        entry = diff_snapshots(before, after)["histograms"]["h.ms"]
        assert entry["count"]["delta"] == -6.0
        assert entry["sum"]["before"] == 20.0
        assert entry["sum"]["after"] == 10.0
        assert entry["mean"]["delta"] == 0.5

    def test_empty_histogram_reads_as_zero(self):
        entry = diff_snapshots(
            snap(), snap(histograms={"h.ms": {"count": 0}})
        )["histograms"]["h.ms"]
        assert entry["sum"] == {"before": 0.0, "after": 0.0, "delta": 0.0, "pct": None}


class TestRenderDiff:
    def test_only_changed_drops_flat_rows(self):
        diff = diff_snapshots(
            snap(counters={"same.x": 5, "moved.y": 1}),
            snap(counters={"same.x": 5, "moved.y": 3}),
        )
        table = render_diff(diff)
        assert "moved.y" in table and "same.x" not in table
        assert "+2" in table and "+200.0%" in table

    def test_all_rows_when_requested(self):
        diff = diff_snapshots(snap(counters={"same.x": 5}), snap(counters={"same.x": 5}))
        assert "same.x" in render_diff(diff, only_changed=False)

    def test_no_differences_placeholder(self):
        assert render_diff(diff_snapshots(snap(), snap())) == "(no differences)"

    def test_histogram_rows_labelled_by_stat(self):
        diff = diff_snapshots(
            snap(histograms={"h.ms": {"count": 2, "mean": 1.0}}),
            snap(histograms={"h.ms": {"count": 3, "mean": 1.0}}),
        )
        table = render_diff(diff)
        assert "h.ms.n" in table and "h.ms.sum" in table and "h.ms.mean" in table
