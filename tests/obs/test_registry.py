"""MetricsRegistry: get-or-create, families, snapshots, rendering."""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.util.clock import VirtualClock


class TestGetOrCreate:
    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert registry.gauge("a.g") is registry.gauge("a.g")
        assert registry.histogram("a.h") is registry.histogram("a.h")

    def test_cross_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x.y")
        with pytest.raises(ValueError):
            registry.gauge("x.y")
        with pytest.raises(ValueError):
            registry.histogram("x.y")

    def test_counter_value_without_creation(self):
        registry = MetricsRegistry()
        assert registry.counter_value("never.created") == 0
        assert registry.gauge_value("never.created") == 0.0
        assert len(registry) == 0


class TestFamilies:
    def test_grouped_by_first_segment(self):
        registry = MetricsRegistry()
        registry.counter("broker.msgs.ingress")
        registry.counter("broker.msgs.delivered")
        registry.histogram("tracker.trace.latency_ms")
        families = registry.families()
        assert sorted(families) == ["broker", "tracker"]
        assert families["broker"] == [
            "broker.msgs.delivered",
            "broker.msgs.ingress",
        ]


class TestSnapshot:
    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("broker.msgs.ingress").inc(3)
        registry.gauge("transport.inflight").set(2.0)
        registry.histogram("crypto.ms.trace_sign").observe(24.5)
        registry.histogram("tdn.query.latency_ms")  # empty stays visible
        snapshot = json.loads(registry.to_json())
        assert snapshot["counters"]["broker.msgs.ingress"] == 3
        assert snapshot["gauges"]["transport.inflight"] == 2.0
        assert snapshot["histograms"]["crypto.ms.trace_sign"]["count"] == 1
        assert snapshot["histograms"]["tdn.query.latency_ms"] == {"count": 0}

    def test_render_text_groups_families(self):
        registry = MetricsRegistry()
        registry.counter("broker.msgs.ingress").inc()
        registry.histogram("tracker.trace.latency_ms").observe(12.0)
        text = registry.render_text()
        assert "[broker]" in text
        assert "[tracker]" in text
        assert "broker.msgs.ingress" in text
        assert "n=1" in text

    def test_timer_helper_uses_named_histogram(self):
        registry = MetricsRegistry()
        clock = VirtualClock()
        with registry.timer("tdn.query.latency_ms", clock):
            clock.advance_by(7.0)
        assert registry.histogram("tdn.query.latency_ms").count == 1
        assert registry.histogram("tdn.query.latency_ms").mean == 7.0
