"""Tests for repro.crypto.rsa."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.rsa import generate_rsa_keypair
from repro.errors import DecryptionError, KeyMaterialError, PaddingError, SignatureError


class TestKeyGeneration:
    def test_key_properties(self, keypair):
        private = keypair.private
        assert private.n == private.p * private.q
        assert private.public.n == private.n
        assert keypair.public.bits == 512

    def test_crt_parameters(self, keypair):
        private = keypair.private
        assert private.d_p == private.d % (private.p - 1)
        assert private.d_q == private.d % (private.q - 1)
        assert (private.q_inv * private.q) % private.p == 1

    def test_deterministic_given_rng(self):
        a = generate_rsa_keypair(random.Random(3), bits=256)
        b = generate_rsa_keypair(random.Random(3), bits=256)
        assert a.public == b.public

    def test_rejects_bad_sizes(self):
        with pytest.raises(KeyMaterialError):
            generate_rsa_keypair(random.Random(0), bits=100)
        with pytest.raises(KeyMaterialError):
            generate_rsa_keypair(random.Random(0), bits=513)

    def test_fingerprint_stable_and_distinct(self, keypair, second_keypair):
        assert keypair.public.fingerprint() == keypair.public.fingerprint()
        assert keypair.public.fingerprint() != second_keypair.public.fingerprint()
        assert len(keypair.public.fingerprint()) == 20


class TestSignatures:
    def test_sign_verify_roundtrip(self, keypair):
        message = b"trace message payload"
        signature = keypair.private.sign(message)
        keypair.public.verify(message, signature)  # no exception

    def test_signature_length_is_modulus_length(self, keypair):
        signature = keypair.private.sign(b"x")
        assert len(signature) == keypair.public.byte_length

    def test_tampered_message_fails(self, keypair):
        signature = keypair.private.sign(b"original")
        with pytest.raises(SignatureError):
            keypair.public.verify(b"tampered", signature)

    def test_tampered_signature_fails(self, keypair):
        signature = bytearray(keypair.private.sign(b"msg"))
        signature[5] ^= 0x01
        with pytest.raises(SignatureError):
            keypair.public.verify(b"msg", bytes(signature))

    def test_wrong_key_fails(self, keypair, second_keypair):
        signature = keypair.private.sign(b"msg")
        with pytest.raises(SignatureError):
            second_keypair.public.verify(b"msg", signature)

    def test_wrong_length_signature_rejected(self, keypair):
        with pytest.raises(SignatureError):
            keypair.public.verify(b"msg", b"\x00" * 10)

    def test_out_of_range_signature_rejected(self, keypair):
        too_big = (keypair.public.n + 1).to_bytes(keypair.public.byte_length, "big")
        with pytest.raises(SignatureError):
            keypair.public.verify(b"msg", too_big)

    def test_empty_message(self, keypair):
        signature = keypair.private.sign(b"")
        keypair.public.verify(b"", signature)

    @given(st.binary(max_size=200))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, message):
        keypair = _CACHED_PAIR
        keypair.public.verify(message, keypair.private.sign(message))


class TestEncryption:
    def test_encrypt_decrypt_roundtrip(self, keypair, rng):
        plaintext = b"secret trace key material!"
        ciphertext = keypair.public.encrypt(plaintext, rng)
        assert keypair.private.decrypt(ciphertext) == plaintext

    def test_ciphertext_randomized(self, keypair, rng):
        a = keypair.public.encrypt(b"same", rng)
        b = keypair.public.encrypt(b"same", rng)
        assert a != b
        assert keypair.private.decrypt(a) == keypair.private.decrypt(b)

    def test_wrong_key_fails(self, keypair, second_keypair, rng):
        ciphertext = keypair.public.encrypt(b"secret", rng)
        with pytest.raises(DecryptionError):
            second_keypair.private.decrypt(ciphertext)

    def test_plaintext_too_long_rejected(self, keypair, rng):
        max_len = keypair.public.byte_length - 11
        with pytest.raises(KeyMaterialError):
            keypair.public.encrypt(b"x" * (max_len + 1), rng)
        # boundary: exactly max_len is fine
        ciphertext = keypair.public.encrypt(b"x" * max_len, rng)
        assert keypair.private.decrypt(ciphertext) == b"x" * max_len

    def test_corrupted_ciphertext_rejected(self, keypair, rng):
        ciphertext = bytearray(keypair.public.encrypt(b"data", rng))
        ciphertext[0] ^= 0xFF
        with pytest.raises(DecryptionError):
            keypair.private.decrypt(bytes(ciphertext))

    def test_wrong_length_ciphertext_rejected(self, keypair):
        with pytest.raises(DecryptionError):
            keypair.private.decrypt(b"\x01\x02")

    def test_empty_plaintext(self, keypair, rng):
        assert keypair.private.decrypt(keypair.public.encrypt(b"", rng)) == b""


_CACHED_PAIR = generate_rsa_keypair(random.Random(0xFEED))
