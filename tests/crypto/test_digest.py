"""Tests for repro.crypto.digest."""

import pytest

from repro.crypto.digest import Digest, hmac_sha1, sha1_digest, sha256_digest


class TestDigestFunctions:
    def test_sha1_known_answer(self):
        # SHA-1("abc") from FIPS 180
        assert (
            sha1_digest(b"abc").hex()
            == "a9993e364706816aba3e25717850c26c9cd0d89d"
        )

    def test_sha256_known_answer(self):
        assert (
            sha256_digest(b"abc").hex()
            == "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_sha1_is_160_bits(self):
        assert len(sha1_digest(b"")) == 20

    def test_sha256_is_256_bits(self):
        assert len(sha256_digest(b"")) == 32


class TestDigestValue:
    def test_compute_and_match(self):
        digest = Digest.compute(b"payload")
        assert digest.algorithm == "sha1"
        assert digest.matches(b"payload")
        assert not digest.matches(b"tampered")

    def test_sha256_variant(self):
        digest = Digest.compute(b"payload", "sha256")
        assert digest.algorithm == "sha256"
        assert digest.matches(b"payload")

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            Digest.compute(b"x", "md5000")

    def test_hex(self):
        assert Digest.compute(b"abc").hex == sha1_digest(b"abc").hex()


class TestHMAC:
    def test_keyed(self):
        a = hmac_sha1(b"key1", b"data")
        b = hmac_sha1(b"key2", b"data")
        assert a != b
        assert len(a) == 20

    def test_deterministic(self):
        assert hmac_sha1(b"k", b"d") == hmac_sha1(b"k", b"d")

    def test_rfc2202_vector(self):
        # RFC 2202 test case 1
        assert (
            hmac_sha1(b"\x0b" * 20, b"Hi There").hex()
            == "b617318655057264e28bc0b6fb378c8ef146be00"
        )
