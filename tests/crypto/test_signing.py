"""Tests for message signing and hybrid sealing."""

import pytest

from repro.crypto.signing import (
    SealedPayload,
    SignedEnvelope,
    open_sealed,
    seal_for,
    sign_payload,
    verify_payload,
)
from repro.errors import DecryptionError, SignatureError


class TestSignedEnvelope:
    def test_roundtrip(self, keypair):
        payload = {"trace": "ALLS_WELL", "n": 3, "data": b"\x01"}
        envelope = sign_payload(payload, keypair.private)
        assert verify_payload(envelope, keypair.public) == payload

    def test_tampered_payload_rejected(self, keypair):
        envelope = sign_payload({"x": 1}, keypair.private)
        tampered = SignedEnvelope(
            payload={"x": 2},
            signature=envelope.signature,
            signer_fingerprint=envelope.signer_fingerprint,
        )
        with pytest.raises(SignatureError):
            verify_payload(tampered, keypair.public)

    def test_wrong_key_rejected(self, keypair, second_keypair):
        envelope = sign_payload({"x": 1}, keypair.private)
        with pytest.raises(SignatureError):
            verify_payload(envelope, second_keypair.public)

    def test_fingerprint_mismatch_detected_first(self, keypair, second_keypair):
        envelope = sign_payload({"x": 1}, keypair.private)
        forged = SignedEnvelope(
            payload=envelope.payload,
            signature=envelope.signature,
            signer_fingerprint=second_keypair.public.fingerprint(),
        )
        with pytest.raises(SignatureError):
            verify_payload(forged, second_keypair.public)

    def test_dict_roundtrip(self, keypair):
        envelope = sign_payload({"a": [1, 2]}, keypair.private)
        restored = SignedEnvelope.from_dict(envelope.to_dict())
        assert restored == envelope
        assert verify_payload(restored, keypair.public) == {"a": [1, 2]}

    def test_payload_key_order_irrelevant(self, keypair):
        envelope = sign_payload({"a": 1, "b": 2}, keypair.private)
        reordered = SignedEnvelope(
            payload={"b": 2, "a": 1},
            signature=envelope.signature,
            signer_fingerprint=envelope.signer_fingerprint,
        )
        assert verify_payload(reordered, keypair.public) == {"a": 1, "b": 2}


class TestSealing:
    def test_roundtrip(self, keypair, rng):
        payload = {"session": "abc", "key": b"\x00" * 24}
        sealed = seal_for(payload, keypair.public, rng)
        assert open_sealed(sealed, keypair.private) == payload

    def test_only_recipient_can_open(self, keypair, second_keypair, rng):
        sealed = seal_for({"secret": 1}, keypair.public, rng)
        with pytest.raises(DecryptionError):
            open_sealed(sealed, second_keypair.private)

    def test_large_payload(self, keypair, rng):
        payload = {"blob": b"\xab" * 10_000}
        sealed = seal_for(payload, keypair.public, rng)
        assert open_sealed(sealed, keypair.private) == payload

    def test_corrupt_ciphertext_rejected(self, keypair, rng):
        sealed = seal_for({"secret": 1}, keypair.public, rng)
        corrupted = SealedPayload(
            wrapped_key=sealed.wrapped_key,
            algorithm=sealed.algorithm,
            padding=sealed.padding,
            ciphertext=sealed.ciphertext[:-1] + bytes([sealed.ciphertext[-1] ^ 1]),
        )
        with pytest.raises(DecryptionError):
            open_sealed(corrupted, keypair.private)

    def test_corrupt_wrapped_key_rejected(self, keypair, rng):
        sealed = seal_for({"secret": 1}, keypair.public, rng)
        corrupted = SealedPayload(
            wrapped_key=bytes([sealed.wrapped_key[0] ^ 1]) + sealed.wrapped_key[1:],
            algorithm=sealed.algorithm,
            padding=sealed.padding,
            ciphertext=sealed.ciphertext,
        )
        with pytest.raises(DecryptionError):
            open_sealed(corrupted, keypair.private)

    def test_dict_roundtrip(self, keypair, rng):
        sealed = seal_for({"v": 9}, keypair.public, rng)
        restored = SealedPayload.from_dict(sealed.to_dict())
        assert open_sealed(restored, keypair.private) == {"v": 9}

    def test_seal_randomized(self, keypair, rng):
        a = seal_for({"v": 1}, keypair.public, rng)
        b = seal_for({"v": 1}, keypair.public, rng)
        assert a.ciphertext != b.ciphertext
        assert a.wrapped_key != b.wrapped_key
