"""Tests for the X.509-like certificate layer."""

import random

import pytest

from repro.crypto.certificates import Certificate, CertificateAuthority
from repro.errors import CertificateError


class TestIssueAndVerify:
    def test_issued_certificate_verifies(self, ca, keypair):
        cert = ca.issue("alice", keypair.public)
        ca.verify(cert, now_ms=0.0)

    def test_root_is_self_signed_and_valid(self, ca):
        root = ca.root_certificate
        assert root.subject == root.issuer == ca.name
        ca.verify(root, now_ms=1e12)

    def test_serials_increase(self, ca, keypair):
        a = ca.issue("a", keypair.public)
        b = ca.issue("b", keypair.public)
        assert b.serial > a.serial

    def test_fingerprint_is_key_fingerprint(self, ca, keypair):
        cert = ca.issue("alice", keypair.public)
        assert cert.fingerprint() == keypair.public.fingerprint()


class TestRejection:
    def test_wrong_issuer_name(self, ca, keypair, rng):
        other = CertificateAuthority("evil-ca", rng)
        cert = other.issue("mallory", keypair.public)
        with pytest.raises(CertificateError):
            ca.verify(cert)

    def test_forged_signature(self, ca, keypair):
        cert = ca.issue("alice", keypair.public)
        forged = Certificate(
            subject="mallory",  # changed subject, same signature
            issuer=cert.issuer,
            public_key=cert.public_key,
            serial=cert.serial,
            not_before_ms=cert.not_before_ms,
            not_after_ms=cert.not_after_ms,
            signature=cert.signature,
        )
        with pytest.raises(CertificateError):
            ca.verify(forged)

    def test_same_name_different_ca_rejected(self, keypair):
        real = CertificateAuthority("ca", random.Random(1))
        fake = CertificateAuthority("ca", random.Random(2))
        cert = fake.issue("alice", keypair.public)
        with pytest.raises(CertificateError):
            real.verify(cert)


class TestValidityWindow:
    def test_expired(self, ca, keypair):
        cert = ca.issue("alice", keypair.public, not_after_ms=100.0)
        ca.verify(cert, now_ms=50.0)
        with pytest.raises(CertificateError):
            ca.verify(cert, now_ms=101.0)

    def test_not_yet_valid(self, ca, keypair):
        cert = ca.issue("alice", keypair.public, not_before_ms=100.0)
        with pytest.raises(CertificateError):
            ca.verify(cert, now_ms=50.0)
        ca.verify(cert, now_ms=100.0)

    def test_no_time_check_when_now_omitted(self, ca, keypair):
        cert = ca.issue("alice", keypair.public, not_after_ms=100.0)
        ca.verify(cert)  # structural check only

    def test_check_validity_boundaries(self, ca, keypair):
        cert = ca.issue("alice", keypair.public, not_before_ms=10.0, not_after_ms=20.0)
        cert.check_validity(10.0)
        cert.check_validity(20.0)
        with pytest.raises(CertificateError):
            cert.check_validity(9.99)
        with pytest.raises(CertificateError):
            cert.check_validity(20.01)
