"""Tests for key abstractions."""

import pytest

from repro.crypto.keys import KeyPair, SymmetricKey


class TestSymmetricKey:
    def test_generate_defaults_to_192(self, rng):
        key = SymmetricKey.generate(rng)
        assert key.key.bits == 192
        assert key.algorithm == "AES/CBC"
        assert key.padding == "PKCS7"

    def test_encrypt_decrypt(self, rng):
        key = SymmetricKey.generate(rng)
        ciphertext = key.encrypt(b"trace body", rng)
        assert key.decrypt(ciphertext) == b"trace body"

    def test_dict_roundtrip(self, rng):
        key = SymmetricKey.generate(rng)
        restored = SymmetricKey.from_dict(key.to_dict())
        assert restored == key
        # a key restored from the wire decrypts what the original encrypted
        ciphertext = key.encrypt(b"payload", rng)
        assert restored.decrypt(ciphertext) == b"payload"

    def test_dict_carries_scheme_metadata(self, rng):
        data = SymmetricKey.generate(rng).to_dict()
        assert data["algorithm"] == "AES/CBC"
        assert data["padding"] == "PKCS7"
        assert len(bytes(data["key"])) == 24

    def test_unsupported_scheme_rejected(self, rng):
        key = SymmetricKey.generate(rng)
        weird = SymmetricKey(key=key.key, algorithm="ROT13", padding="none")
        with pytest.raises(ValueError):
            weird.encrypt(b"x", rng)
        with pytest.raises(ValueError):
            weird.decrypt(b"x" * 32)


class TestKeyPair:
    def test_generate(self, rng):
        pair = KeyPair.generate(rng)
        assert pair.public.n == pair.private.n
        signature = pair.private.sign(b"m")
        pair.public.verify(b"m", signature)

    def test_custom_bits(self, rng):
        pair = KeyPair.generate(rng, bits=256)
        assert pair.public.bits == 256
