"""Tests for the calibrated crypto cost model."""

import pytest

from repro.crypto.costmodel import (
    CryptoCostModel,
    CryptoOp,
    OpCost,
    PAPER_CALIBRATION,
)
from repro.errors import ConfigurationError


class TestCalibrationTable:
    def test_covers_every_op(self):
        assert set(PAPER_CALIBRATION) == set(CryptoOp)

    def test_paper_micro_values(self):
        """The Table 3 rows are encoded exactly."""
        assert PAPER_CALIBRATION[CryptoOp.TOKEN_GENERATE_AND_SIGN].mean_ms == 27.19
        assert PAPER_CALIBRATION[CryptoOp.TOKEN_VERIFY].mean_ms == 2.01
        assert PAPER_CALIBRATION[CryptoOp.TRACE_SIGN].mean_ms == 24.51
        assert PAPER_CALIBRATION[CryptoOp.TRACE_VERIFY].mean_ms == 6.83
        assert PAPER_CALIBRATION[CryptoOp.TRACE_SIGN_ENCRYPTED].mean_ms == 24.0
        assert PAPER_CALIBRATION[CryptoOp.TRACE_VERIFY_ENCRYPTED].mean_ms == 5.31
        assert PAPER_CALIBRATION[CryptoOp.TRACE_ENCRYPT].mean_ms == 0.25
        assert PAPER_CALIBRATION[CryptoOp.TRACE_DECRYPT].mean_ms == 1.15

    def test_signing_dominates_symmetric(self):
        """The premise of the section 6.3 optimization."""
        assert (
            PAPER_CALIBRATION[CryptoOp.TRACE_SIGN].mean_ms
            > 10 * PAPER_CALIBRATION[CryptoOp.TRACE_ENCRYPT].mean_ms
        )
        assert (
            PAPER_CALIBRATION[CryptoOp.TRACE_VERIFY].mean_ms
            > PAPER_CALIBRATION[CryptoOp.TRACE_DECRYPT].mean_ms
        )


class TestSampling:
    def test_deterministic_given_seed(self):
        a = CryptoCostModel(seed=5)
        b = CryptoCostModel(seed=5)
        ops = [CryptoOp.TRACE_SIGN, CryptoOp.TOKEN_VERIFY, CryptoOp.TRACE_SIGN]
        assert [a.sample_ms(op) for op in ops] == [b.sample_ms(op) for op in ops]

    def test_samples_positive(self):
        model = CryptoCostModel(seed=0)
        for _ in range(500):
            assert model.sample_ms(CryptoOp.TRACE_ENCRYPT) >= 0.01

    def test_sample_mean_near_calibration(self):
        model = CryptoCostModel(seed=1)
        samples = [model.sample_ms(CryptoOp.TRACE_SIGN) for _ in range(2000)]
        assert sum(samples) / len(samples) == pytest.approx(24.51, abs=0.5)

    def test_scale(self):
        model = CryptoCostModel(seed=1, scale=2.0)
        assert model.mean_ms(CryptoOp.TRACE_SIGN) == pytest.approx(49.02)

    def test_scale_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            CryptoCostModel(scale=0.0)

    def test_free_model_charges_nothing(self):
        model = CryptoCostModel.free()
        assert all(model.sample_ms(op) == 0.0 for op in CryptoOp)

    def test_missing_calibration_rejected(self):
        partial = {CryptoOp.TRACE_SIGN: OpCost(1.0, 0.1)}
        with pytest.raises(ConfigurationError):
            CryptoCostModel(calibration=partial)

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            OpCost(-1.0, 0.0)
