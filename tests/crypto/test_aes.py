"""Tests for repro.crypto.aes, anchored on the FIPS-197 known answers."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes import (
    AESKey,
    aes_cbc_decrypt,
    aes_cbc_encrypt,
    decrypt_block,
    encrypt_block,
    generate_aes_key,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.errors import DecryptionError, KeyMaterialError, PaddingError

FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_VECTORS = [
    # (key hex, expected ciphertext hex) — FIPS-197 appendix C
    (
        "000102030405060708090a0b0c0d0e0f",
        "69c4e0d86a7b0430d8cdb78070b4c55a",
    ),
    (
        "000102030405060708090a0b0c0d0e0f1011121314151617",
        "dda97ca4864cdfe06eaf70a0ec0d7191",
    ),
    (
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        "8ea2b7ca516745bfeafc49904b496089",
    ),
]


class TestKnownAnswers:
    @pytest.mark.parametrize("key_hex,ct_hex", FIPS_VECTORS)
    def test_fips197_encrypt(self, key_hex, ct_hex):
        key = AESKey(bytes.fromhex(key_hex))
        assert encrypt_block(FIPS_PLAINTEXT, key.round_keys()).hex() == ct_hex

    @pytest.mark.parametrize("key_hex,ct_hex", FIPS_VECTORS)
    def test_fips197_decrypt(self, key_hex, ct_hex):
        key = AESKey(bytes.fromhex(key_hex))
        assert (
            decrypt_block(bytes.fromhex(ct_hex), key.round_keys()) == FIPS_PLAINTEXT
        )


class TestAESKey:
    @pytest.mark.parametrize("bits", [128, 192, 256])
    def test_valid_sizes(self, bits, rng):
        key = generate_aes_key(rng, bits)
        assert key.bits == bits

    def test_default_is_192_per_paper(self, rng):
        assert generate_aes_key(rng).bits == 192

    def test_rejects_bad_sizes(self, rng):
        with pytest.raises(KeyMaterialError):
            AESKey(b"short")
        with pytest.raises(KeyMaterialError):
            generate_aes_key(rng, 64)

    def test_block_functions_reject_bad_length(self, rng):
        key = generate_aes_key(rng, 128)
        with pytest.raises(ValueError):
            encrypt_block(b"tooshort", key.round_keys())
        with pytest.raises(ValueError):
            decrypt_block(b"x" * 17, key.round_keys())


class TestPKCS7:
    def test_pad_always_adds(self):
        assert pkcs7_pad(b"") == b"\x10" * 16
        assert pkcs7_pad(b"x" * 16)[-1] == 16
        assert len(pkcs7_pad(b"x" * 16)) == 32

    def test_roundtrip(self):
        for length in range(0, 33):
            data = bytes(range(length % 256))[:length]
            assert pkcs7_unpad(pkcs7_pad(data)) == data

    def test_rejects_bad_padding(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"x" * 15 + b"\x00")
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"x" * 15 + b"\x11")
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"x" * 14 + b"\x03\x02")
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"x" * 15)  # not a block multiple
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"")


class TestCBC:
    def test_roundtrip(self, rng):
        key = generate_aes_key(rng)
        for plaintext in (b"", b"short", b"x" * 16, b"y" * 1000):
            ciphertext = aes_cbc_encrypt(key, plaintext, rng)
            assert aes_cbc_decrypt(key, ciphertext) == plaintext

    def test_iv_randomizes_ciphertext(self, rng):
        key = generate_aes_key(rng)
        a = aes_cbc_encrypt(key, b"same message", rng)
        b = aes_cbc_encrypt(key, b"same message", rng)
        assert a != b

    def test_wrong_key_fails(self, rng):
        key_a = generate_aes_key(rng)
        key_b = generate_aes_key(rng)
        ciphertext = aes_cbc_encrypt(key_a, b"secret", rng)
        with pytest.raises(DecryptionError):
            aes_cbc_decrypt(key_b, ciphertext)

    def test_corrupt_ciphertext_fails(self, rng):
        key = generate_aes_key(rng)
        ciphertext = bytearray(aes_cbc_encrypt(key, b"secret data", rng))
        ciphertext[-1] ^= 0x01
        with pytest.raises(DecryptionError):
            aes_cbc_decrypt(key, bytes(ciphertext))

    def test_truncated_ciphertext_fails(self, rng):
        key = generate_aes_key(rng)
        ciphertext = aes_cbc_encrypt(key, b"secret", rng)
        with pytest.raises(DecryptionError):
            aes_cbc_decrypt(key, ciphertext[:16])
        with pytest.raises(DecryptionError):
            aes_cbc_decrypt(key, ciphertext[:-1])

    @given(st.binary(max_size=256), st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, plaintext, seed):
        rng = random.Random(seed)
        key = generate_aes_key(rng, 192)
        assert aes_cbc_decrypt(key, aes_cbc_encrypt(key, plaintext, rng)) == plaintext
