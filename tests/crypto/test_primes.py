"""Tests for repro.crypto.primes."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.primes import egcd, generate_prime, is_probable_prime, modinv

KNOWN_PRIMES = [2, 3, 5, 7, 97, 101, 7919, 104729, 2**31 - 1]
KNOWN_COMPOSITES = [0, 1, 4, 9, 100, 7917, 2**31, 561, 41041, 825265]  # incl. Carmichael


class TestMillerRabin:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_known_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_known_composites(self, n):
        assert not is_probable_prime(n)

    def test_negative_numbers(self):
        assert not is_probable_prime(-7)

    def test_large_prime(self):
        # 2^127 - 1 is a Mersenne prime
        assert is_probable_prime(2**127 - 1, random.Random(0))

    def test_large_composite(self):
        assert not is_probable_prime((2**61 - 1) * (2**31 - 1), random.Random(0))

    @given(st.integers(min_value=2, max_value=10_000))
    @settings(max_examples=200)
    def test_agrees_with_trial_division(self, n):
        by_trial = all(n % d for d in range(2, int(n**0.5) + 1)) and n >= 2
        assert is_probable_prime(n) == by_trial


class TestGeneratePrime:
    @pytest.mark.parametrize("bits", [16, 32, 64, 128])
    def test_exact_bit_length(self, bits):
        rng = random.Random(42)
        p = generate_prime(bits, rng)
        assert p.bit_length() == bits
        assert is_probable_prime(p)

    def test_top_two_bits_set(self):
        p = generate_prime(64, random.Random(1))
        assert p >> 62 == 0b11

    def test_deterministic(self):
        assert generate_prime(32, random.Random(7)) == generate_prime(
            32, random.Random(7)
        )

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            generate_prime(4, random.Random(0))


class TestModularArithmetic:
    def test_egcd_identity(self):
        g, x, y = egcd(240, 46)
        assert g == 2
        assert 240 * x + 46 * y == g

    @given(
        st.integers(min_value=1, max_value=10**9),
        st.integers(min_value=1, max_value=10**9),
    )
    def test_egcd_property(self, a, b):
        g, x, y = egcd(a, b)
        assert a * x + b * y == g
        assert a % g == 0 and b % g == 0

    def test_modinv(self):
        assert (3 * modinv(3, 11)) % 11 == 1
        assert (65537 * modinv(65537, 7919 * 104729)) % (7919 * 104729) \
            == 65537 * modinv(65537, 7919 * 104729) % (7919 * 104729)

    def test_modinv_raises_when_not_coprime(self):
        with pytest.raises(ValueError):
            modinv(6, 9)

    @given(st.integers(min_value=2, max_value=10**6))
    def test_modinv_property(self, m):
        a = 65537
        from math import gcd

        if gcd(a, m) == 1:
            assert (a * modinv(a, m)) % m == 1
