"""Partition state must survive broker crash/recover cycles.

The bug under test: ``recover_broker`` restored every neighbor link it
was handed, including edges an active ``partition_link`` had severed —
a crash/recover cycle of either endpoint silently healed the partition.
Partitions are independent faults with their own lifetime: only
``heal_link`` may end one.
"""

import pytest

from repro import build_deployment
from repro.faults.scenarios import CHAOS_PING_POLICY
from repro.messaging.broker_network import BrokerNetwork
from repro.sim.engine import Simulator


@pytest.fixture
def net():
    sim = Simulator()
    network = BrokerNetwork(sim, seed=13)
    network.build_chain(["b1", "b2", "b3"])
    network.connect_brokers("b1", "b3")  # ring: partitions leave a detour
    return sim, network


class TestPartitionSurvivesRecovery:
    def test_recover_does_not_heal_partitioned_edge(self, net):
        _, network = net
        network.partition_link("b1", "b3")
        neighbors = network.neighbors_of("b1")  # ("b2",) — b3 already severed

        network.fail_broker("b1")
        network.recover_broker("b1", ["b2", "b3"])  # naive caller passes both
        assert network.is_partitioned("b1", "b3")
        assert "b3" not in network.neighbors_of("b1")
        assert "b1" not in network.neighbors_of("b3")
        assert network.neighbors_of("b1") == neighbors

    def test_crash_of_far_endpoint_also_preserved(self, net):
        _, network = net
        network.partition_link("b1", "b3")
        network.fail_broker("b3")
        network.recover_broker("b3", ["b1", "b2"])
        assert network.is_partitioned("b1", "b3")
        assert network.neighbors_of("b3") == ("b2",)

    def test_heal_then_recover_restores_edge(self, net):
        _, network = net
        network.partition_link("b1", "b3")
        network.fail_broker("b1")
        network.heal_link("b1", "b3")  # healed while down: no-op on adjacency
        assert not network.is_partitioned("b1", "b3")
        assert "b1" not in network.neighbors_of("b3")
        network.recover_broker("b1", ["b2", "b3"])
        assert "b3" in network.neighbors_of("b1")

    def test_recover_skips_still_failed_neighbor(self, net):
        """Same latent bug family: adjacency to a crashed peer must wait
        for *that* peer's recovery."""
        _, network = net
        network.fail_broker("b1")
        network.fail_broker("b2")
        network.recover_broker("b1", ["b2", "b3"])
        assert network.neighbors_of("b1") == ("b3",)
        network.recover_broker("b2", ["b1", "b3"])
        assert network.neighbors_of("b2") == ("b1", "b3")

    def test_hop_routing_uses_detour_after_recovery(self, net):
        _, network = net
        network.partition_link("b1", "b3")
        network.fail_broker("b1")
        network.recover_broker("b1", ["b2", "b3"])
        assert network.hop_distance("b1", "b3") == 2  # via b2, not the cut edge


class TestPartitionSurvivesRestartScenario:
    def test_deployment_restart_keeps_partition(self):
        """End-to-end scenario through ``Deployment.restart_broker`` (the
        path chaos recovery takes): partition b1–b3, crash b1 mid-run,
        restart it with its pre-crash neighbor set, and verify traffic
        still detours and the cut edge stays out of the routing graph."""
        dep = build_deployment(
            broker_ids=["b1", "b2", "b3"],
            seed=42,
            ping_policy=CHAOS_PING_POLICY,
            extra_links=[("b1", "b3")],
            codec="json",
        )
        entity = dep.add_traced_entity("svc")
        tracker = dep.add_tracker("w")
        tracker.connect("b3")
        entity.start("b1")
        dep.sim.run(until=3_000)
        tracker.track("svc")
        dep.sim.run(until=10_000)

        dep.network.partition_link("b1", "b3")
        neighbors = ("b2", "b3")  # a careless caller hands back everything
        dep.network.fail_broker("b1")
        dep.sim.run(until=15_000)
        dep.restart_broker("b1", neighbors)
        dep.sim.run(until=30_000)

        assert dep.network.is_partitioned("b1", "b3")
        assert "b3" not in dep.network.neighbors_of("b1")
        assert dep.network.hop_distance("b1", "b3") == 2
        # traffic kept flowing over the detour after the restart
        assert dep.metrics.counter_value("broker.msgs.delivered") > 0
