"""The docs/FAULTS.md scenario catalog must match the code registry.

The catalog table is the user-facing contract for ``repro faults
--scenario``; a scenario added (or renamed) in ``faults.scenarios``
without a catalog row — or a documented row with no implementation — is
doc drift this gate catches.  Also pins the ``scenario_plan`` /
``run_scenario`` unknown-name error paths.
"""

import re
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.faults.scenarios import SCENARIOS, run_scenario, scenario_plan

FAULTS_DOC = Path(__file__).resolve().parents[2] / "docs" / "FAULTS.md"


def _catalog_rows() -> list[str]:
    """Scenario names from the first column of the catalog table."""
    text = FAULTS_DOC.read_text(encoding="utf-8")
    start = text.index("## Scenario catalog")
    end = text.index("\n## ", start + 1)
    section = text[start:end]
    names = []
    for line in section.splitlines():
        match = re.match(r"\|\s*`([a-z0-9-]+)`\s*\|", line)
        if match:
            names.append(match.group(1))
    return names


def test_catalog_table_matches_scenario_registry():
    rows = _catalog_rows()
    assert rows, "no scenario rows found under '## Scenario catalog'"
    assert sorted(rows) == sorted(SCENARIOS), (
        "docs/FAULTS.md catalog and faults.scenarios.SCENARIOS disagree: "
        f"doc-only={sorted(set(rows) - set(SCENARIOS))}, "
        f"code-only={sorted(set(SCENARIOS) - set(rows))}"
    )


def test_catalog_has_no_duplicate_rows():
    rows = _catalog_rows()
    assert len(rows) == len(set(rows))


def test_every_scenario_builds_a_plan():
    for name in SCENARIOS:
        plan = scenario_plan(name)
        assert plan.events, f"scenario {name!r} has an empty plan"


def test_scenario_plan_unknown_name_lists_known_scenarios():
    with pytest.raises(ConfigurationError) as excinfo:
        scenario_plan("no-such-scenario")
    message = str(excinfo.value)
    assert "no-such-scenario" in message
    for name in SCENARIOS:
        assert name in message


def test_run_scenario_rejects_unknown_name():
    with pytest.raises(ConfigurationError):
        run_scenario("definitely-not-a-scenario", seed=1)
