"""FaultController end-to-end behaviour on the chaos deployment.

Covers the three properties ISSUE 4 calls out: deterministic replay
(bit-identical snapshots per seed), partition-heal reconverging interest
fabric-wide, and entity churn leaving no orphan subscriptions behind.
"""

import pytest

from repro.errors import SimulationError
from repro.faults import (
    FaultController,
    FaultEvent,
    FaultKind,
    FaultPlan,
    build_chaos_deployment,
    render_snapshot,
    run_scenario,
    scenario_plan,
)
from repro.faults.scenarios import (
    ENTITY_BROKER,
    ENTITY_ID,
    SCENARIOS,
    TRACKER_BROKER,
    TRACKER_ID,
)
from repro.messaging.message import reset_message_ids
from repro.tracing.topics import TraceTopicSet
from repro.tracing.traces import TraceType


def run_chaos(plan, seed=42, until=60_000.0):
    """Bootstrapped chaos deployment with ``plan`` driven to ``until``."""
    # message-id digit width feeds wire sizes; rewind for replay equality
    reset_message_ids()
    dep = build_chaos_deployment(seed)
    entity = dep.add_traced_entity(ENTITY_ID)
    tracker = dep.add_tracker(TRACKER_ID)
    tracker.interest_refresh_ms = 0.0
    tracker.connect(TRACKER_BROKER)
    entity.start(ENTITY_BROKER)
    controller = FaultController(dep, plan)
    controller.start()
    dep.sim.run(until=3_000)
    tracker.track(ENTITY_ID)
    dep.sim.run(until=until)
    return dep, entity, tracker, controller


class TestLifecycle:
    def test_start_twice_rejected(self):
        dep = build_chaos_deployment(1)
        controller = FaultController(dep, FaultPlan(name="empty"))
        controller.start()
        with pytest.raises(SimulationError):
            controller.start()

    def test_probe_installed_on_every_manager(self):
        dep = build_chaos_deployment(1)
        controller = FaultController(dep, FaultPlan(name="empty"))
        for manager in dep.managers.values():
            assert manager.recovery_probe is controller.probe


class TestDeterministicReplay:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_same_seed_same_snapshot(self, name):
        first = run_scenario(name, seed=11, duration_ms=40_000.0)
        second = run_scenario(name, seed=11, duration_ms=40_000.0)
        assert render_snapshot(first) == render_snapshot(second)

    def test_different_seed_differs(self):
        # ping jitter guarantees the counters move with the seed
        a = run_scenario("broker-crash", seed=1)
        b = run_scenario("broker-crash", seed=2)
        assert render_snapshot(a) != render_snapshot(b)

    def test_fault_timeline_replays_identically(self):
        times = []
        for _ in range(2):
            dep, *_ = run_chaos(scenario_plan("entity-churn"), until=90_000.0)
            times.append(
                [(r.time_ms, r.kind) for r in dep.journal.records()
                 if r.kind.startswith("fault.") or r.kind.startswith("recovery.")]
            )
        assert times[0] == times[1]


class TestPartitionHeal:
    def test_interest_reconverges_fabric_wide(self):
        plan = scenario_plan("link-partition")
        dep, entity, tracker, _ = run_chaos(plan, until=60_000.0)

        # fault window closed and the link is back in the routing fabric
        assert dep.metrics.gauge_value("faults.active") == 0.0
        assert "b3" in dep.network.neighbors_of("b1")

        # the tracker's interest in the entity's heartbeat topic is known on
        # every broker again: each one can route toward a subscriber
        session = dep.manager_of(ENTITY_BROKER).session_of(ENTITY_ID)
        topics = TraceTopicSet(session.advertisement.trace_topic, ENTITY_ID)
        heartbeat = topics.all_updates.canonical
        for broker in dep.network.brokers():
            assert broker.has_any_subscriber(heartbeat), broker.broker_id

        # heartbeats flow end-to-end after the heal
        heal_ms = plan.events[0].revert_at_ms
        late = [t for t in tracker.traces_of_type(TraceType.ALLS_WELL)
                if t.received_ms > heal_ms + 5_000]
        assert late, "tracker should receive heartbeats after the heal"


class TestEntityChurn:
    def test_no_orphan_subscriptions_after_churn(self):
        dep, entity, tracker, _ = run_chaos(
            scenario_plan("entity-churn"), until=90_000.0
        )

        # the entity came back and a fresh session is active
        session = dep.manager_of(ENTITY_BROKER).session_of(ENTITY_ID)
        assert session is not None and session.active

        for broker in dep.network.brokers():
            connected = set(broker.client_ids)
            index = broker.subscription_index
            for pattern in index.patterns():
                entry = index._by_pattern[pattern]
                # an index entry must never be empty (pruning invariant)
                assert not entry.is_empty(), pattern
                # client subscriptions only for currently attached clients
                orphans = set(entry.clients) - connected
                assert not orphans, f"{broker.broker_id}:{pattern} -> {orphans}"
                # remote interest only names live brokers
                for remote in entry.remote:
                    assert not dep.network.broker(remote).failed

    def test_churned_entity_recovers_twice(self):
        dep, entity, tracker, controller = run_chaos(
            scenario_plan("entity-churn"), until=90_000.0
        )
        assert dep.metrics.counter_value("faults.injected.entity_crash") == 2
        assert dep.metrics.counter_value("trace.recovery.completed") == 2
        assert controller.probe.pending() == ()
        # the tracker observed both failures and both recoveries
        assert len(tracker.traces_of_type(TraceType.FAILED)) >= 2
        kinds = [t.trace_type for t in tracker.received]
        assert TraceType.RECOVERING in kinds


class TestLinkWindows:
    def test_packet_loss_window_drops_and_restores(self):
        dep, entity, tracker, _ = run_chaos(
            scenario_plan("packet-loss"), until=60_000.0
        )
        assert dep.metrics.counter_value("transport.msgs.dropped") > 0
        reverts = dep.journal.records("fault.reverted")
        assert len(reverts) == 1
        assert reverts[0].fields["drops"] > 0
        # windows fully uninstalled
        for link in dep.network.links_of("b1"):
            assert link.disruption is None

    def test_delay_spike_inflates_rtt_then_heals(self):
        dep, entity, tracker, _ = run_chaos(
            scenario_plan("delay-spike"), until=60_000.0
        )
        reverts = dep.journal.records("fault.reverted")
        assert len(reverts) == 1
        assert reverts[0].fields["delayed"] > 0
        assert reverts[0].fields["drops"] == 0
        for link in dep.network.links_of("b1"):
            assert link.disruption is None
