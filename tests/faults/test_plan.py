"""FaultPlan / FaultEvent: validation, ordering, serialization."""

import pytest

from repro.errors import ConfigurationError, ValidationError
from repro.faults import FaultEvent, FaultKind, FaultPlan


def crash(at_ms=1_000.0, **kwargs):
    kwargs.setdefault("target", "b1")
    return FaultEvent(kind=FaultKind.BROKER_CRASH, at_ms=at_ms, **kwargs)


class TestEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValidationError):
            crash(at_ms=-1.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValidationError):
            crash(duration_ms=0.0)

    def test_permanent_fault_allowed(self):
        assert crash(duration_ms=None).revert_at_ms is None

    def test_target_required(self):
        with pytest.raises(ValidationError):
            FaultEvent(kind=FaultKind.BROKER_CRASH, at_ms=0.0, target="")

    def test_partition_requires_peer(self):
        with pytest.raises(ValidationError):
            FaultEvent(
                kind=FaultKind.LINK_PARTITION, at_ms=0.0, target="b1",
                duration_ms=10.0,
            )

    def test_peer_forbidden_outside_pair_kinds(self):
        with pytest.raises(ValidationError):
            crash(peer="b2")

    def test_window_kinds_require_duration(self):
        with pytest.raises(ValidationError):
            FaultEvent(
                kind=FaultKind.PACKET_LOSS, at_ms=0.0, target="b1",
                loss_probability=0.5,
            )

    @pytest.mark.parametrize("p", [0.0, -0.1, 1.5])
    def test_packet_loss_probability_bounds(self, p):
        with pytest.raises(ValidationError):
            FaultEvent(
                kind=FaultKind.PACKET_LOSS, at_ms=0.0, target="b1",
                duration_ms=10.0, loss_probability=p,
            )

    def test_delay_spike_needs_positive_delay(self):
        with pytest.raises(ValidationError):
            FaultEvent(
                kind=FaultKind.DELAY_SPIKE, at_ms=0.0, target="b1",
                duration_ms=10.0, extra_delay_ms=0.0,
            )

    def test_failover_only_for_broker_crash(self):
        with pytest.raises(ValidationError):
            FaultEvent(
                kind=FaultKind.ENTITY_CRASH, at_ms=0.0, target="svc",
                failover_to="b2",
            )

    def test_revert_time(self):
        event = crash(at_ms=100.0, duration_ms=50.0)
        assert event.revert_at_ms == 150.0


class TestPlan:
    def test_plan_needs_name(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(name="", events=())

    def test_timeline_sorted_by_injection_time(self):
        plan = FaultPlan(
            name="p",
            events=(crash(at_ms=300.0), crash(at_ms=100.0), crash(at_ms=200.0)),
        )
        assert [e.at_ms for e in plan.timeline()] == [100.0, 200.0, 300.0]

    def test_horizon_includes_reverts(self):
        plan = FaultPlan(
            name="p",
            events=(crash(at_ms=100.0, duration_ms=500.0), crash(at_ms=400.0)),
        )
        assert plan.horizon_ms() == 600.0

    def test_len(self):
        assert len(FaultPlan(name="p", events=(crash(),))) == 1


class TestSerialization:
    def roundtrip(self, plan):
        return FaultPlan.from_dict(plan.to_dict())

    def test_plan_roundtrips(self):
        plan = FaultPlan(
            name="mixed",
            events=(
                crash(at_ms=100.0, duration_ms=50.0, failover_to="b2",
                      detect_after_ms=5.0),
                FaultEvent(
                    kind=FaultKind.LINK_PARTITION, at_ms=10.0, target="b1",
                    peer="b3", duration_ms=20.0,
                ),
                FaultEvent(
                    kind=FaultKind.PACKET_LOSS, at_ms=30.0, target="b2",
                    duration_ms=5.0, loss_probability=0.25,
                ),
                FaultEvent(
                    kind=FaultKind.DELAY_SPIKE, at_ms=40.0, target="b3",
                    duration_ms=5.0, extra_delay_ms=100.0,
                ),
                FaultEvent(
                    kind=FaultKind.ENTITY_CRASH, at_ms=50.0, target="svc",
                    duration_ms=5.0,
                ),
            ),
        )
        restored = self.roundtrip(plan)
        assert restored.name == plan.name
        assert restored.timeline() == plan.timeline()

    def test_to_dict_emits_sorted_timeline(self):
        plan = FaultPlan(name="p", events=(crash(at_ms=200.0), crash(at_ms=50.0)))
        times = [e["at_ms"] for e in plan.to_dict()["events"]]
        assert times == [50.0, 200.0]

    def test_malformed_event_rejected(self):
        with pytest.raises(ValidationError):
            FaultEvent.from_dict({"kind": "meteor", "at_ms": 0.0, "target": "x"})

    def test_malformed_plan_rejected(self):
        with pytest.raises(ValidationError):
            FaultPlan.from_dict({"name": "p"})
