"""Unit tests for the summarized-interest federation plane.

The contract under test (``repro.messaging.federation``): summaries are
exact below the hot-set limit, lossy-but-false-negative-free above it,
and control traffic is batched per epoch — one ``control.floods`` per
changed summary, never one per pattern.
"""

import pytest

from repro.errors import ConfigurationError
from repro.messaging.federation import (
    DEFAULT_DIGEST_BITS,
    FederatedInterestPlane,
    FederationConfig,
    InterestSummary,
    TopicProbe,
    pattern_digest_keys,
)
from repro.sim.monitor import Monitor


@pytest.fixture
def monitor():
    return Monitor()


def make_plane(monitor, hot_set_limit=4, digest_bits=1024, brokers=("b1", "b2")):
    plane = FederatedInterestPlane(
        monitor=monitor,
        config=FederationConfig(hot_set_limit=hot_set_limit, digest_bits=digest_bits),
    )
    for broker_id in brokers:
        plane.register_broker(broker_id)
    return plane


class TestConfig:
    def test_defaults_validate(self):
        FederationConfig().validated()

    def test_hot_set_limit_floor(self):
        with pytest.raises(ConfigurationError):
            FederationConfig(hot_set_limit=0).validated()

    @pytest.mark.parametrize("bits", [512, 1000, 1025])
    def test_digest_bits_power_of_two(self, bits):
        with pytest.raises(ConfigurationError):
            FederationConfig(digest_bits=bits).validated()

    def test_plane_validates_config(self, monitor):
        with pytest.raises(ConfigurationError):
            FederatedInterestPlane(
                monitor=monitor, config=FederationConfig(hot_set_limit=-1)
            )


class TestDigestKeys:
    def test_literal_pattern_digests_full_text(self):
        assert pattern_digest_keys("a/b/c") == ("e:a/b/c",)

    def test_wildcard_pattern_digests_literal_prefix(self):
        assert pattern_digest_keys("a/b/*") == ("p:a/b",)
        assert pattern_digest_keys("a/>") == ("p:a",)
        assert pattern_digest_keys("a/*/c") == ("p:a",)

    def test_rootless_wildcard_has_no_keys(self):
        """``>`` and ``*/...`` can only be covered by match_all."""
        assert pattern_digest_keys(">") == ()
        assert pattern_digest_keys("*/b") == ()


class TestSummaryModes:
    def test_exact_below_hot_set_limit(self, monitor):
        plane = make_plane(monitor, hot_set_limit=4)
        for i in range(4):
            plane.announce(f"t/{i}", "b1")
        summary = plane.summary_of("b1")
        assert summary.exact
        assert summary.hot == tuple(sorted(f"t/{i}" for i in range(4)))
        assert summary.pattern_count == 4
        assert plane.is_exact("b1")

    def test_digest_above_hot_set_limit(self, monitor):
        plane = make_plane(monitor, hot_set_limit=4)
        for i in range(5):
            plane.announce(f"t/{i}", "b1")
        summary = plane.summary_of("b1")
        assert not summary.exact
        assert summary.hot == ()
        assert summary.digest != 0
        assert summary.pattern_count == 5
        assert not plane.is_exact("b1")
        assert monitor.metrics.gauge_value("fed.summary.overflowed") == 1

    def test_retraction_returns_to_exact(self, monitor):
        plane = make_plane(monitor, hot_set_limit=4)
        for i in range(5):
            plane.announce(f"t/{i}", "b1")
        assert not plane.is_exact("b1")
        plane.retract("t/4", "b1")
        assert plane.is_exact("b1")
        assert monitor.metrics.gauge_value("fed.summary.overflowed") == 0

    def test_retraction_clears_digest_bits_exactly(self, monitor):
        """Counting-bloom removal: retracting all but one pattern leaves
        exactly that pattern's bits set (no residue, no over-clearing)."""
        plane = make_plane(monitor, hot_set_limit=1)
        for i in range(10):
            plane.announce(f"t/{i}", "b1")
        for i in range(1, 10):
            plane.retract(f"t/{i}", "b1")
        plane.announce("u/other", "b1")  # force past limit: digest mode
        assert not plane.summary_of("b1").exact
        assert plane.interested("t/0") == {"b1"}
        # all retracted patterns must have had their bits cleared; their
        # topics may only match via chance collisions with the 2 live ones
        false_hits = sum(
            1 for i in range(1, 10) if plane.interested(f"t/{i}")
        )
        assert false_hits <= 2


class TestNoFalseNegatives:
    """The property routing correctness rests on: a digest summary must
    match every topic a stored pattern matches."""

    PATTERNS = [
        "a/b/c",
        "a/b/*",
        "a/>",
        "x/*/z",
        ">",
        "*/tail",
        "Constrained/Traces/Broker/Publish-Only/deadbeef/Change",
    ]
    TOPICS = [
        ("a/b/c", {"a/b/c", "a/b/*", "a/>", ">"}),
        ("a/b/q", {"a/b/*", "a/>", ">"}),
        ("a/solo", {"a/>", ">"}),
        ("x/y/z", {"x/*/z", ">"}),
        ("q/tail", {"*/tail", ">"}),
        (
            "Constrained/Traces/Broker/Publish-Only/deadbeef/Change",
            {"Constrained/Traces/Broker/Publish-Only/deadbeef/Change", ">"},
        ),
    ]

    @pytest.mark.parametrize("hot_set_limit", [1, 100])
    def test_matches_superset_of_true_interest(self, monitor, hot_set_limit):
        plane = make_plane(monitor, hot_set_limit=hot_set_limit)
        for pattern in self.PATTERNS:
            plane.announce(pattern, "b1")
        for topic, expected in self.TOPICS:
            if expected:
                assert plane.interested(topic) == {"b1"}, topic

    def test_no_interest_no_match_in_exact_mode(self, monitor):
        plane = make_plane(monitor, hot_set_limit=100)
        plane.announce("a/b", "b1")
        assert plane.interested("zzz/unrelated") == set()


class TestEpochBatching:
    def floods(self, monitor):
        return monitor.count("control.floods")

    def test_burst_costs_one_flood(self, monitor):
        """N announcements then one query: one summary broadcast, not N."""
        plane = make_plane(monitor, hot_set_limit=100)
        for i in range(50):
            plane.announce(f"t/{i}", "b1")
        assert self.floods(monitor) == 0  # nothing flushed yet
        plane.interested("t/0")
        assert self.floods(monitor) == 1
        assert monitor.metrics.counter_value("fed.summary.updates") == 1

    def test_unchanged_summary_not_rebroadcast(self, monitor):
        plane = make_plane(monitor)
        plane.announce("t/1", "b1")
        plane.interested("t/1")
        before = self.floods(monitor)
        plane.announce("t/1", "b1")  # duplicate: no state change
        plane.interested("t/1")
        assert self.floods(monitor) == before

    def test_flush_covers_multiple_dirty_brokers(self, monitor):
        plane = make_plane(monitor)
        plane.announce("a/x", "b1")
        plane.announce("b/y", "b2")
        assert plane.flush() == 2
        assert self.floods(monitor) == 2

    def test_memo_hits_between_changes(self, monitor):
        plane = make_plane(monitor)
        plane.announce("t/1", "b1")
        plane.interested("t/1")
        plane.interested("t/1")
        assert monitor.metrics.counter_value("fed.match.memo.hit") == 1
        plane.announce("t/2", "b1")  # dirties -> memo invalidated on flush
        plane.interested("t/1")
        assert monitor.metrics.counter_value("fed.match.memo.miss") == 2


class TestMembership:
    def test_late_joiner_replays_one_summary_per_active_peer(self, monitor):
        plane = make_plane(monitor, brokers=("b1", "b2", "b3"))
        plane.announce("a/x", "b1")
        plane.announce("b/y", "b2")
        plane.register_broker("b9")
        assert monitor.metrics.counter_value("fed.summary.replays") == 2

    def test_register_is_idempotent(self, monitor):
        plane = make_plane(monitor)
        plane.announce("a/x", "b1")
        plane.register_broker("b1")
        assert plane.patterns_of("b1") == ["a/x"]

    def test_unregistered_broker_rejected(self, monitor):
        plane = make_plane(monitor)
        with pytest.raises(ConfigurationError):
            plane.announce("a/x", "ghost")

    def test_interest_gauge_tracks_live_patterns(self, monitor):
        plane = make_plane(monitor)
        plane.announce("a/x", "b1")
        plane.announce("a/y", "b1")
        assert monitor.metrics.gauge_value("fed.interest.patterns") == 2
        plane.retract("a/x", "b1")
        plane.retract("a/x", "b1")  # double retract must not underflow
        assert monitor.metrics.gauge_value("fed.interest.patterns") == 1

    def test_exclusion(self, monitor):
        plane = make_plane(monitor)
        plane.announce("a/x", "b1")
        assert plane.interested("a/x", exclude="b1") == set()
        assert not plane.has_interest("a/x", exclude="b1")
        assert plane.has_interest("a/x")


class TestProbeAndSummaryInternals:
    def test_probe_prefix_depths_are_proper(self):
        probe = TopicProbe("a/b/c", DEFAULT_DIGEST_BITS)
        assert len(probe.prefix_bits) == 2  # "a" and "a/b", never "a/b/c"

    def test_same_content_ignores_version(self):
        one = InterestSummary("b1", 1, ("a/x",), 0, False, 1)
        two = InterestSummary("b1", 7, ("a/x",), 0, False, 1)
        assert one.same_content(two)
        assert not one.same_content(None)
