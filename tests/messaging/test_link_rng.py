"""Duplex-link jitter streams: direction independence regression tests.

The bug under test: both directions of a broker-to-broker link used to
share one RNG stream, so traffic on a->b advanced the stream and
perturbed the latencies sampled on b->a.  The fix derives one named
stream per direction; the legacy shared stream survives only behind
``per_direction_link_rng=False`` for the ``*_legacy.json`` seeds.
"""

from repro.messaging.broker_network import BrokerNetwork
from repro.sim.engine import Simulator


def build(per_direction: bool, seed: int = 7) -> BrokerNetwork:
    network = BrokerNetwork(
        Simulator(), seed=seed, per_direction_link_rng=per_direction
    )
    network.build_chain(["b1", "b2"])
    return network


def link_rngs(network: BrokerNetwork):
    ab = network.broker("b1").neighbor_links["b2"]._rng
    ba = network.broker("b2").neighbor_links["b1"]._rng
    return ab, ba


class TestPerDirectionStreams:
    def test_directions_have_independent_streams(self):
        ab, ba = link_rngs(build(per_direction=True))
        assert ab is not ba

    def test_legacy_mode_shares_one_stream(self):
        ab, ba = link_rngs(build(per_direction=False))
        assert ab is ba

    def test_draws_on_one_direction_leave_the_other_untouched(self):
        """The regression proper: consuming a->b draws must not change
        the sequence b->a will sample."""
        noisy = build(per_direction=True)
        quiet = build(per_direction=True)
        noisy_ab, noisy_ba = link_rngs(noisy)
        _, quiet_ba = link_rngs(quiet)

        for _ in range(100):  # heavy one-directional traffic, simulated
            noisy_ab.random()
        assert [noisy_ba.random() for _ in range(10)] == [
            quiet_ba.random() for _ in range(10)
        ]

    def test_legacy_mode_documents_the_coupling(self):
        """Same experiment on the shared stream: draws *do* interfere —
        the historical behaviour the legacy seeds pin."""
        noisy = build(per_direction=False)
        quiet = build(per_direction=False)
        noisy_ab, noisy_ba = link_rngs(noisy)
        _, quiet_ba = link_rngs(quiet)

        for _ in range(100):
            noisy_ab.random()
        assert [noisy_ba.random() for _ in range(10)] != [
            quiet_ba.random() for _ in range(10)
        ]

    def test_streams_deterministic_per_seed(self):
        one_ab, one_ba = link_rngs(build(per_direction=True, seed=3))
        two_ab, two_ba = link_rngs(build(per_direction=True, seed=3))
        assert [one_ab.random() for _ in range(5)] == [
            two_ab.random() for _ in range(5)
        ]
        assert [one_ba.random() for _ in range(5)] == [
            two_ba.random() for _ in range(5)
        ]
