"""Tests for the message envelope."""

from repro.messaging.message import Message
from repro.messaging.topics import Topic
from repro.transport.base import wire_size


def make(topic="a/b", body=None, **kwargs):
    return Message(
        topic=Topic.parse(topic), body=body or {"k": 1}, source="src", **kwargs
    )


class TestMessage:
    def test_ids_unique(self):
        assert make().message_id != make().message_id

    def test_with_hop_increments(self):
        message = make()
        hopped = message.with_hop().with_hop()
        assert message.hops == 0
        assert hopped.hops == 2
        assert hopped.message_id == message.message_id

    def test_wire_dict_complete(self):
        message = make(signature={"sig": b"x"}, auth_token={"tok": 1}, encrypted=True)
        wire = message.wire_dict()
        assert wire["topic"] == "a/b"
        assert wire["signature"] == {"sig": b"x"}
        assert wire["auth_token"] == {"tok": 1}
        assert wire["encrypted"] is True

    def test_wire_size_grows_with_payload(self):
        small = make(body={"k": 1})
        large = make(body={"k": "x" * 2000})
        assert wire_size(large) > wire_size(small) + 1500

    def test_signed_message_larger_on_wire(self):
        plain = make()
        signed = make(signature={"payload": {"k": 1}, "sig": b"s" * 64})
        assert wire_size(signed) > wire_size(plain)

    def test_describe(self):
        text = make().describe()
        assert "a/b" in text and "src" in text
