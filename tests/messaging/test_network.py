"""Tests for the broker-network fabric."""

import pytest

from repro.errors import ConfigurationError, RoutingError
from repro.messaging.broker_network import BrokerNetwork
from repro.sim.engine import Simulator
from repro.transport.udp import udp_profile


@pytest.fixture
def sim():
    return Simulator()


class TestTopology:
    def test_build_chain(self, sim):
        network = BrokerNetwork(sim, seed=0)
        brokers = network.build_chain(["a", "b", "c", "d"])
        assert [b.broker_id for b in brokers] == ["a", "b", "c", "d"]
        assert network.hop_distance("a", "d") == 3

    def test_duplicate_broker_rejected(self, sim):
        network = BrokerNetwork(sim, seed=0)
        network.add_broker("x")
        with pytest.raises(ConfigurationError):
            network.add_broker("x")

    def test_self_link_rejected(self, sim):
        network = BrokerNetwork(sim, seed=0)
        network.add_broker("x")
        with pytest.raises(ConfigurationError):
            network.connect_brokers("x", "x")

    def test_unknown_broker(self, sim):
        network = BrokerNetwork(sim, seed=0)
        with pytest.raises(RoutingError):
            network.broker("ghost")

    def test_routing_tables_updated_on_new_links(self, sim):
        network = BrokerNetwork(sim, seed=0)
        network.build_chain(["a", "b", "c"])
        assert network.broker("a").routing_table["c"] == "b"
        network.connect_brokers("a", "c")
        assert network.broker("a").routing_table["c"] == "c"

    def test_brokers_sorted(self, sim):
        network = BrokerNetwork(sim, seed=0)
        network.add_broker("z")
        network.add_broker("a")
        assert [b.broker_id for b in network.brokers()] == ["a", "z"]


class TestMachines:
    def test_machine_get_or_create(self, sim):
        network = BrokerNetwork(sim, seed=0)
        assert network.machine("m") is network.machine("m")

    def test_machines_have_independent_rngs(self, sim):
        network = BrokerNetwork(sim, seed=0)
        a = network.machine("a").rng.random()
        b = network.machine("b").rng.random()
        assert a != b

    def test_deterministic_across_builds(self):
        values = []
        for _ in range(2):
            network = BrokerNetwork(Simulator(), seed=123)
            values.append(network.machine("m").rng.random())
        assert values[0] == values[1]

    def test_shared_machine_for_colocation(self, sim):
        network = BrokerNetwork(sim, seed=0)
        broker = network.add_broker("b", machine_name="host-1")
        client = network.add_client("c", machine_name="host-1")
        assert broker.machine is client.machine

    def test_ntp_model_applies_skew(self, sim):
        from repro.util.clock import NTPSkewModel

        network = BrokerNetwork(sim, seed=0, ntp_model=NTPSkewModel(seed=5))
        machine = network.machine("m")
        assert machine.now() != 0.0
        assert 30.0 <= abs(machine.now()) <= 100.0


class TestClients:
    def test_duplicate_client_rejected(self, sim):
        network = BrokerNetwork(sim, seed=0)
        network.add_client("c")
        with pytest.raises(ConfigurationError):
            network.add_client("c")

    def test_connect_by_name(self, sim):
        network = BrokerNetwork(sim, seed=0)
        network.add_broker("b")
        network.add_client("c")
        client = network.connect_client("c", "b")
        assert client.connected
        assert client.broker.broker_id == "b"

    def test_custom_profile(self, sim):
        network = BrokerNetwork(sim, seed=0)
        network.add_broker("b")
        client = network.add_client("c")
        network.connect_client(client, "b", profile=udp_profile())
        assert client._link_to_broker.profile.name == "UDP"


class TestClientLifecycle:
    def test_remove_client_frees_id(self, sim):
        network = BrokerNetwork(sim, seed=0)
        network.add_broker("b")
        client = network.add_client("c")
        network.connect_client(client, "b")
        network.remove_client("c")
        assert not client.connected
        again = network.add_client("c")  # id reusable
        assert again is not client

    def test_remove_unknown_client_is_noop(self, sim):
        BrokerNetwork(sim, seed=0).remove_client("ghost")


class TestBrokerFailureFabric:
    def test_fail_broker_updates_routes(self, sim):
        network = BrokerNetwork(sim, seed=0)
        network.build_chain(["a", "b", "c"])
        network.connect_brokers("a", "c")
        network.fail_broker("b")
        assert network.broker("a").routing_table.get("c") == "c"
        assert "b" not in network.broker("a").routing_table

    def test_recover_broker_restores_adjacency(self, sim):
        network = BrokerNetwork(sim, seed=0)
        network.build_chain(["a", "b", "c"])
        network.fail_broker("b")
        assert "b" not in network.broker("a").routing_table
        network.recover_broker("b", neighbors=["a", "c"])
        assert network.broker("a").routing_table["c"] == "b"
        assert not network.broker("b").failed
