"""Property-based tests for constrained-topic parsing."""

from hypothesis import given, strategies as st

from repro.messaging.constrained import (
    AllowedActions,
    ConstrainedTopic,
    Distribution,
)

# free-form element values that are not action/distribution keywords
_keywordish = {
    "publish-only", "publishonly", "publish", "subscribe-only",
    "subscribeonly", "subscribe", "publishsubscribe", "publish-subscribe",
    "disseminate", "suppress", "limited",
}
free_element = (
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=0x7A),
        min_size=1,
        max_size=10,
    )
    .filter(lambda s: s.replace("_", "-").lower() not in _keywordish)
)
actions = st.sampled_from(list(AllowedActions))
distributions = st.sampled_from(list(Distribution))
suffixes = st.lists(free_element, max_size=4)

# a *named* constrainer: "Broker" is the grammar's sentinel for
# broker-constrained topics, where no principal string is the constrainer
named_constrainer = free_element.filter(lambda s: s != "Broker")


class TestRoundTripProperties:
    @given(free_element, free_element, actions, distributions, suffixes)
    def test_build_parse_roundtrip(self, event_type, constrainer, action, dist, sfx):
        """A fully-specified constrained topic reparses identically."""
        built = ConstrainedTopic.build(event_type, constrainer, action, dist, *sfx)
        reparsed = ConstrainedTopic.parse(built.canonical)
        assert reparsed == built

    @given(free_element, actions, distributions, suffixes)
    def test_canonicalization_idempotent(self, event_type, action, dist, sfx):
        built = ConstrainedTopic.build(event_type, "Broker", action, dist, *sfx)
        once = ConstrainedTopic.parse(built.canonical)
        twice = ConstrainedTopic.parse(once.canonical)
        assert once == twice
        assert once.canonical == twice.canonical

    @given(free_element, named_constrainer, actions, distributions)
    def test_exactly_one_constrainer_may_do_reserved_action(
        self, event_type, constrainer, action, dist
    ):
        """The constrainer, and only the constrainer, performs the
        reserved action(s)."""
        topic = ConstrainedTopic.build(event_type, constrainer, action, dist)
        other = constrainer + "x"
        if action is AllowedActions.PUBLISH_ONLY:
            assert topic.may_publish(constrainer, is_broker=False)
            assert not topic.may_publish(other, is_broker=False)
            assert topic.may_subscribe(other, is_broker=False)
        elif action is AllowedActions.SUBSCRIBE_ONLY:
            assert topic.may_subscribe(constrainer, is_broker=False)
            assert not topic.may_subscribe(other, is_broker=False)
            assert topic.may_publish(other, is_broker=False)
        else:
            assert not topic.may_publish(other, is_broker=False)
            assert not topic.may_subscribe(other, is_broker=False)

    @given(free_element)
    def test_event_type_alone_defaults_rest(self, event_type):
        parsed = ConstrainedTopic.parse(f"Constrained/{event_type}")
        assert parsed.event_type == event_type
        assert parsed.constrainer == "Broker"
        assert parsed.allowed_actions is AllowedActions.PUBLISH_SUBSCRIBE
        assert parsed.distribution is Distribution.DISSEMINATE
        assert parsed.suffixes == ()

    @given(free_element, free_element, suffixes)
    def test_free_tokens_fill_earliest_position(self, event_type, constrainer, sfx):
        """The resolution rule: a free-form token fills the earliest open
        free-form position — so the token after the event type is always
        the constrainer, never a suffix (the paper's format is ambiguous
        here; this is the documented disambiguation)."""
        text = "/".join(["Constrained", event_type, constrainer, *sfx])
        parsed = ConstrainedTopic.parse(text)
        assert parsed.event_type == event_type
        assert parsed.constrainer == constrainer
        assert parsed.suffixes == tuple(sfx)

    @given(free_element, distributions, suffixes)
    def test_keyword_skips_free_positions(self, event_type, dist, sfx):
        """A distribution keyword right after the event type leaves the
        constrainer and actions at their defaults (the paper's
        '/Constrained/Traces/Limited' example, generalized)."""
        text = "/".join(["Constrained", event_type, dist.value, *sfx])
        parsed = ConstrainedTopic.parse(text)
        assert parsed.event_type == event_type
        assert parsed.constrainer == "Broker"
        assert parsed.allowed_actions is AllowedActions.PUBLISH_SUBSCRIBE
        assert parsed.distribution is dist
        assert parsed.suffixes == tuple(sfx)
