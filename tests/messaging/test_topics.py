"""Tests for topic syntax and matching."""

import pytest
from hypothesis import given, strategies as st

from repro.messaging.topics import (
    Topic,
    TopicValidationError,
    topic_matches,
    validate_topic,
)

segment = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=0x7F),
    min_size=1,
    max_size=8,
)
concrete_topic = st.lists(segment, min_size=1, max_size=6).map("/".join)


class TestValidation:
    def test_paper_example(self):
        assert validate_topic("StockQuotes/Companies/Adobe") == [
            "StockQuotes", "Companies", "Adobe",
        ]

    def test_leading_slash_tolerated(self):
        assert validate_topic("/a/b") == ["a", "b"]
        assert Topic.parse("/a/b").canonical == "a/b"

    @pytest.mark.parametrize("bad", ["", "/", "a//b", "a/b/", "//"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(TopicValidationError):
            validate_topic(bad)

    def test_rejects_non_string(self):
        with pytest.raises(TopicValidationError):
            validate_topic(None)  # type: ignore[arg-type]

    def test_wildcards_rejected_for_publish(self):
        with pytest.raises(TopicValidationError):
            validate_topic("a/*/c")
        with pytest.raises(TopicValidationError):
            validate_topic("a/>")

    def test_wildcards_allowed_for_subscription(self):
        assert validate_topic("a/*/c", allow_wildcards=True) == ["a", "*", "c"]
        assert validate_topic("a/>", allow_wildcards=True) == ["a", ">"]

    def test_multi_wildcard_must_be_last(self):
        with pytest.raises(TopicValidationError):
            validate_topic("a/>/b", allow_wildcards=True)


class TestMatching:
    @pytest.mark.parametrize(
        "pattern,topic,expected",
        [
            ("a/b/c", "a/b/c", True),
            ("a/b/c", "a/b/d", False),
            ("a/b/c", "a/b", False),
            ("a/b", "a/b/c", False),
            ("a/*/c", "a/b/c", True),
            ("a/*/c", "a/x/c", True),
            ("a/*/c", "a/b/d", False),
            ("*", "anything", True),
            ("*", "two/segments", False),
            ("a/>", "a/b", True),
            ("a/>", "a/b/c/d", True),
            ("a/>", "a", False),
            (">", "a", True),
            (">", "a/b/c", True),
            ("a/*/>", "a/b/c", True),
            ("a/*/>", "a/b", False),
        ],
    )
    def test_cases(self, pattern, topic, expected):
        assert topic_matches(pattern, topic) is expected

    @given(concrete_topic)
    def test_identity_always_matches(self, topic):
        assert topic_matches(topic, topic)

    @given(concrete_topic)
    def test_multi_wildcard_matches_everything(self, topic):
        assert topic_matches(">", topic)

    @given(st.lists(segment, min_size=2, max_size=6))
    def test_prefix_plus_wildcard(self, segments):
        topic = "/".join(segments)
        pattern = segments[0] + "/>"
        assert topic_matches(pattern, topic)


class TestTopicObject:
    def test_of(self):
        assert Topic.of("a", "b", "c").canonical == "a/b/c"

    def test_child(self):
        assert Topic.of("a").child("b", "c").canonical == "a/b/c"

    def test_segments(self):
        assert Topic.parse("x/y").segments == ("x", "y")

    def test_matches_method(self):
        assert Topic.parse("a/*", allow_wildcards=True).matches("a/b")
        assert Topic.parse("a/*", allow_wildcards=True).matches(Topic.parse("a/b"))

    def test_value_semantics(self):
        assert Topic.parse("/a/b") == Topic.parse("a/b")
        assert len({Topic.parse("a"), Topic.parse("a")}) == 1

    def test_str(self):
        assert str(Topic.parse("a/b")) == "a/b"
