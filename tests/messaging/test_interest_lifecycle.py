"""Interest-lifecycle regressions: detach/terminate must retract interest.

The bug class under test: a broker that loses its last subscriber for a
pattern (client detach, DoS termination, unsubscribe) must retract its
interest, or peers keep forwarding matching traffic to it forever.
"""

import pytest

from repro.messaging.broker_network import BrokerNetwork
from repro.sim.engine import Simulator


@pytest.fixture
def net():
    sim = Simulator()
    network = BrokerNetwork(sim, seed=11)
    network.build_chain(["b1", "b2", "b3"])
    return sim, network


def make_client(network, name, broker):
    client = network.add_client(name)
    network.connect_client(client, broker)
    return client


def forwarded_out(network):
    return network.monitor.metrics.counter_value("broker.msgs.forwarded_out")


class TestDetachRetractsInterest:
    def test_detach_stops_forwarding(self, net):
        """subscribe -> detach -> publish produces zero forwarded_out."""
        sim, network = net
        pub = make_client(network, "pub", "b1")
        sub = make_client(network, "sub", "b3")
        sub.subscribe("stale/topic", lambda m: None)
        pub.publish("stale/topic", 1)
        sim.run()
        assert forwarded_out(network) > 0  # interest did route traffic

        network.broker("b3").detach_client("sub")
        before = forwarded_out(network)
        pub.publish("stale/topic", 2)
        sim.run()
        assert forwarded_out(network) == before
        assert network.broker("b1")._interested_brokers("stale/topic") == set()

    def test_terminate_client_stops_forwarding(self, net):
        """DoS termination (section 5.2) also retracts interest."""
        sim, network = net
        pub = make_client(network, "pub", "b1")
        mallory = make_client(network, "mallory", "b3")
        mallory.subscribe("watched/topic", lambda m: None)
        network.broker("b3").terminate_client("mallory")
        before = forwarded_out(network)
        pub.publish("watched/topic", 1)
        sim.run()
        assert forwarded_out(network) == before
        assert network.broker("b1")._interested_brokers("watched/topic") == set()

    def test_detach_keeps_other_subscribers_patterns(self, net):
        sim, network = net
        pub = make_client(network, "pub", "b1")
        leaving = make_client(network, "leaving", "b3")
        staying = make_client(network, "staying", "b3")
        got = []
        leaving.subscribe("shared/topic", lambda m: None)
        staying.subscribe("shared/topic", lambda m: got.append(m))
        network.broker("b3").detach_client("leaving")
        pub.publish("shared/topic", 1)
        sim.run()
        assert len(got) == 1  # interest NOT retracted while 'staying' remains

    def test_client_disconnect_retracts(self, net):
        sim, network = net
        pub = make_client(network, "pub", "b1")
        sub = make_client(network, "sub", "b3")
        sub.subscribe("drop/topic", lambda m: None)
        sub.disconnect()
        before = forwarded_out(network)
        pub.publish("drop/topic", 1)
        sim.run()
        assert forwarded_out(network) == before


class TestIndexHygiene:
    def test_drop_remote_interest_prunes_empty_entries(self, net):
        """Retraction must not leave dead patterns behind to re-scan."""
        sim, network = net
        b1 = network.broker("b1")
        sub = make_client(network, "sub", "b3")
        sub.subscribe("dead/pattern", lambda m: None)
        assert "dead/pattern" in b1.subscription_index
        sub.unsubscribe("dead/pattern")
        assert "dead/pattern" not in b1.subscription_index
        assert b1.subscription_index.pattern_count == 0

    def test_detach_prunes_publisher_side_index(self, net):
        sim, network = net
        sub = make_client(network, "sub", "b3")
        sub.subscribe("a/b", lambda m: None)
        sub.subscribe("a/*", lambda m: None)
        sub.subscribe("c/>", lambda m: None)
        b1_index = network.broker("b1").subscription_index
        assert b1_index.pattern_count == 3
        network.broker("b3").detach_client("sub")
        assert b1_index.pattern_count == 0
        assert b1_index.node_count() == 0

    def test_patterns_gauge_returns_to_baseline(self, net):
        sim, network = net
        registry = network.monitor.metrics
        baseline = registry.gauge_value("broker.interest.patterns")
        sub = make_client(network, "sub", "b3")
        sub.subscribe("g/topic", lambda m: None)
        # the subscribing broker holds a local entry; both peers hold a
        # remote-interest entry each
        assert registry.gauge_value("broker.interest.patterns") == baseline + 3
        network.broker("b3").detach_client("sub")
        assert registry.gauge_value("broker.interest.patterns") == baseline


class TestRetractionSymmetry:
    """The announce/retract guards must mirror each other, and
    ``remove_client`` must leave zero stale interest fabric-wide."""

    def test_drop_remote_interest_ignores_self(self, net):
        """A broker's own retraction flood must not touch its local
        index — the mirror of the ``note_remote_interest`` self-guard."""
        sim, network = net
        b3 = network.broker("b3")
        sub = make_client(network, "sub", "b3")
        staying = make_client(network, "staying", "b3")
        sub.subscribe("sym/topic", lambda m: None)
        staying.subscribe("sym/topic", lambda m: None)
        # a self-addressed drop (as a buggy flood echo would deliver) is a no-op
        b3.drop_remote_interest("sym/topic", "b3")
        assert b3.subscription_index.has_local("sym/topic")
        assert b3.subscription_index.clients_for("sym/topic") == ["staying", "sub"]

    def test_note_remote_interest_ignores_self(self, net):
        _, network = net
        b3 = network.broker("b3")
        b3.note_remote_interest("self/topic", "b3")
        assert "self/topic" not in b3.subscription_index

    def test_remove_client_sweeps_all_brokers(self, net):
        """A client that hopped brokers without unsubscribing leaves
        subscriptions on the old broker; ``remove_client`` must purge
        them everywhere and retract the orphaned interest."""
        sim, network = net
        pub = make_client(network, "pub", "b1")
        hopper = make_client(network, "hopper", "b2")
        hopper.subscribe("hop/topic", lambda m: None)
        # hop: attach to b3 without detaching from b2 (the leak)
        network.connect_client(hopper, "b3")
        assert network.broker("b2").subscription_index.has_local("hop/topic")

        network.remove_client("hopper")
        assert not network.broker("b2").subscription_index.has_local("hop/topic")
        assert network.stale_interest_entries("hopper") == []
        before = forwarded_out(network)
        pub.publish("hop/topic", 1)
        sim.run()
        assert forwarded_out(network) == before  # nothing forwarded on leftovers

    def test_no_stale_entries_after_normal_lifecycle(self, net):
        sim, network = net
        sub = make_client(network, "sub", "b3")
        sub.subscribe("clean/topic", lambda m: None)
        sim.run()
        network.remove_client("sub")
        assert network.stale_interest_entries() == []
        assert network.stale_interest_entries("sub") == []

    def test_stale_diagnostic_detects_injected_leak(self, net):
        """The diagnostic itself must see a fabricated control-plane leak."""
        _, network = net
        network._interest.setdefault("leak/topic", set()).add("b2")
        findings = network.stale_interest_entries()
        assert findings == ["leak/topic advertised by b2 with no local subscriber"]

    def test_stale_diagnostic_in_federated_mode(self):
        sim = Simulator()
        network = BrokerNetwork(sim, seed=11, federation=True)
        network.build_chain(["b1", "b2", "b3"])
        sub = make_client(network, "sub", "b3")
        sub.subscribe("fed/topic", lambda m: None)
        assert network.stale_interest_entries() == []
        network.remove_client("sub")
        assert network.stale_interest_entries("sub") == []
        # inject a leak straight into the plane: the diagnostic reports it
        network.federation.announce("fed/leak", "b2")
        assert network.stale_interest_entries() == [
            "fed/leak advertised by b2 with no local subscriber"
        ]


class TestStaleForwardDetection:
    def test_stale_forward_counted_at_disinterested_destination(self, net):
        """A frame forwarded on fabricated stale interest is counted."""
        sim, network = net
        pub = make_client(network, "pub", "b1")
        # fabricate staleness: b1 believes b3 is interested, b3 is not
        network.broker("b1").note_remote_interest("phantom/topic", "b3")
        network.broker("b2").note_remote_interest("phantom/topic", "b3")
        pub.publish("phantom/topic", 1)
        sim.run()
        registry = network.monitor.metrics
        assert registry.counter_value("broker.interest.stale_forwards") == 1
        assert network.monitor.count("messages.forwarded_stale") == 1

    def test_healthy_forwarding_is_not_stale(self, net):
        sim, network = net
        pub = make_client(network, "pub", "b1")
        sub = make_client(network, "sub", "b3")
        sub.subscribe("live/topic", lambda m: m)
        pub.publish("live/topic", 1)
        sim.run()
        assert (
            network.monitor.metrics.counter_value("broker.interest.stale_forwards")
            == 0
        )


class TestLateJoiningBroker:
    def test_new_broker_learns_existing_interest(self, net):
        """Interest flooded before a broker joined is replayed to it."""
        sim, network = net
        sub = make_client(network, "sub", "b3")
        sub.subscribe("early/topic", lambda m: None)
        network.add_broker("b4")
        network.connect_brokers("b3", "b4")
        assert network.broker("b4")._interested_brokers("early/topic") == {"b3"}

    def test_replayed_interest_is_retractable(self, net):
        sim, network = net
        sub = make_client(network, "sub", "b3")
        sub.subscribe("early/topic", lambda m: None)
        network.add_broker("b4")
        network.connect_brokers("b3", "b4")
        network.broker("b3").detach_client("sub")
        assert network.broker("b4")._interested_brokers("early/topic") == set()
