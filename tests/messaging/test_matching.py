"""Tests for the segment-trie SubscriptionIndex (messaging/matching.py)."""

import random

import pytest

from repro.errors import TopicError
from repro.messaging.matching import (
    SubscriptionIndex,
    linear_match_patterns,
)


def index_with_clients(patterns):
    index = SubscriptionIndex()
    for i, pattern in enumerate(patterns):
        index.add_client(pattern, f"c{i}")
    return index


class TestBasicMatching:
    def test_exact_match(self):
        index = index_with_clients(["a/b/c"])
        assert index.match_patterns("a/b/c") == ["a/b/c"]
        assert index.match_patterns("a/b") == []
        assert index.match_patterns("a/b/c/d") == []

    def test_star_matches_exactly_one_segment(self):
        index = index_with_clients(["a/*/c"])
        assert index.match_patterns("a/b/c") == ["a/*/c"]
        assert index.match_patterns("a/x/c") == ["a/*/c"]
        assert index.match_patterns("a/c") == []
        assert index.match_patterns("a/b/b/c") == []

    def test_trailing_many_matches_one_or_more(self):
        index = index_with_clients(["a/>"])
        assert index.match_patterns("a/b") == ["a/>"]
        assert index.match_patterns("a/b/c/d") == ["a/>"]
        assert index.match_patterns("a") == []
        assert index.match_patterns("b/c") == []

    def test_bare_many_matches_everything(self):
        index = index_with_clients([">"])
        assert index.match_patterns("a") == [">"]
        assert index.match_patterns("a/b/c") == [">"]

    def test_overlapping_patterns_all_reported_sorted(self):
        index = index_with_clients(["a/b", "a/*", "a/>", "*/b"])
        assert index.match_patterns("a/b") == ["*/b", "a/*", "a/>", "a/b"]

    def test_leading_slash_canonicalized(self):
        index = SubscriptionIndex()
        index.add_client("/a/b", "c1")
        index.add_client("a/b", "c2")
        assert index.patterns() == ["a/b"]
        assert index.clients_for("/a/b") == ["c1", "c2"]

    def test_invalid_pattern_rejected(self):
        index = SubscriptionIndex()
        with pytest.raises(TopicError):
            index.add_client("a/>/b", "c1")
        with pytest.raises(TopicError):
            index.add_client("", "c1")


class TestLifecycle:
    def test_remove_client_prunes_entry_and_nodes(self):
        index = SubscriptionIndex()
        index.add_client("a/b/c", "c1")
        assert index.node_count() == 3
        assert index.remove_client("a/b/c", "c1")
        assert index.pattern_count == 0
        assert index.node_count() == 0
        assert index.match_patterns("a/b/c") == []

    def test_remove_client_keeps_shared_prefix(self):
        index = SubscriptionIndex()
        index.add_client("a/b/c", "c1")
        index.add_client("a/b/d", "c2")
        index.remove_client("a/b/c", "c1")
        assert index.patterns() == ["a/b/d"]
        assert index.node_count() == 3  # a, a/b, a/b/d

    def test_remove_unknown_is_false(self):
        index = SubscriptionIndex()
        assert not index.remove_client("a/b", "nobody")
        index.add_client("a/b", "c1")
        assert not index.remove_client("a/b", "other")
        assert index.pattern_count == 1

    def test_remove_client_everywhere_reports_orphaned_patterns(self):
        index = SubscriptionIndex()
        index.add_client("solo/topic", "c1")
        index.add_client("shared/topic", "c1")
        index.add_client("shared/topic", "c2")
        index.add_client("handled/topic", "c1")
        index.add_handler("handled/topic", lambda m: None)
        orphaned = index.remove_client_everywhere("c1")
        # only the pattern where c1 was the last local subscriber
        assert orphaned == ["solo/topic"]
        assert index.patterns() == ["handled/topic", "shared/topic"]

    def test_remote_retraction_prunes_empty_entries(self):
        index = SubscriptionIndex()
        index.add_remote("remote/topic", "b2")
        assert "remote/topic" in index
        assert index.remove_remote("remote/topic", "b2")
        assert "remote/topic" not in index
        assert index.node_count() == 0

    def test_handler_removal_prunes(self):
        index = SubscriptionIndex()
        handler = lambda m: None
        index.add_handler("x/y", handler)
        assert index.has_local("x/y")
        assert index.remove_handler("x/y", handler)
        assert not index.has_local("x/y")
        assert index.pattern_count == 0

    def test_patterns_gauge_tracks_live_entries(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        index = SubscriptionIndex(metrics=registry)
        index.add_client("a/b", "c1")
        index.add_remote("a/c", "b2")
        assert registry.gauge_value("broker.interest.patterns") == 2
        index.remove_client("a/b", "c1")
        index.remove_remote("a/c", "b2")
        assert registry.gauge_value("broker.interest.patterns") == 0


class TestQueries:
    def test_client_count_sums_matching_patterns(self):
        index = SubscriptionIndex()
        index.add_client("m/>", "c1")
        index.add_client("m/cpu", "c2")
        index.add_client("m/cpu", "c3")
        index.add_client("other/x", "c4")
        assert index.client_count("m/cpu") == 3

    def test_match_remote_excludes_self(self):
        index = SubscriptionIndex()
        index.add_remote("t/x", "b1")
        index.add_remote("t/*", "b2")
        assert index.match_remote("t/x") == {"b1", "b2"}
        assert index.match_remote("t/x", exclude="b1") == {"b2"}

    def test_has_any_match_modes(self):
        index = SubscriptionIndex()
        assert not index.has_any_match("a/b")
        index.add_remote("a/b", "b9")
        assert index.has_any_match("a/b")
        assert not index.has_any_match("a/b", exclude_remote="b9")
        assert not index.has_local_match("a/b")
        index.add_client("a/*", "c1")
        assert index.has_local_match("a/b")


SEGMENTS = ["alpha", "beta", "gamma", "delta", "x"]


class TestSharding:
    """First-segment shards: creation, probing and pruning."""

    def test_shard_per_distinct_first_segment(self):
        index = index_with_clients(["a/x", "a/y", "b/z", "*/w", ">"])
        assert index.shard_count == 4  # a, b, *, >

    def test_bare_many_shard_matches_any_topic(self):
        index = index_with_clients([">"])
        assert index.match_patterns("solo") == [">"]
        assert index.match_patterns("deep/topic/path") == [">"]

    def test_star_first_shard_probed(self):
        index = index_with_clients(["*/tail"])
        assert index.match_patterns("any/tail") == ["*/tail"]
        assert index.match_patterns("any/other") == []

    def test_shard_pruned_with_last_pattern(self):
        index = SubscriptionIndex()
        index.add_client("a/x", "c1")
        index.add_client("b/y", "c1")
        assert index.shard_count == 2
        index.remove_client("a/x", "c1")
        assert index.shard_count == 1
        assert index.match_patterns("a/x") == []
        index.remove_client("b/y", "c1")
        assert index.shard_count == 0
        assert index.node_count() == 0

    def test_single_segment_pattern_lives_on_shard_node(self):
        index = SubscriptionIndex()
        index.add_client("root", "c1")
        assert index.shard_count == 1
        assert index.node_count() == 1
        assert index.match_patterns("root") == ["root"]
        index.remove_client("root", "c1")
        assert index.shard_count == 0

    def test_shards_gauge_tracks_lifecycle(self):
        from repro.obs.registry import MetricsRegistry

        metrics = MetricsRegistry()
        index = SubscriptionIndex(metrics=metrics)
        index.add_client("a/x", "c1")
        index.add_client("a/y", "c1")
        index.add_client("b/z", "c1")
        assert metrics.gauge_value("broker.interest.shards") == 2
        index.remove_client_everywhere("c1")
        assert metrics.gauge_value("broker.interest.shards") == 0

    def test_segments_are_interned(self):
        """Shared segment strings collapse to one object per process."""
        index = SubscriptionIndex()
        index.add_client("Constrained/Traces/one", "c1")
        index.add_client("Constrained/Traces/two", "c2")
        (shard,) = index._shards.values()
        (key,) = shard.children.keys()
        import sys

        assert key is sys.intern("Traces")


def random_pattern(rng: random.Random) -> str:
    depth = rng.randint(1, 4)
    parts = [rng.choice(SEGMENTS) for _ in range(depth)]
    for i in range(depth - 1):
        if rng.random() < 0.25:
            parts[i] = "*"
    roll = rng.random()
    if roll < 0.2:
        parts[-1] = ">"
        if depth == 1:
            parts = [rng.choice(SEGMENTS), ">"]
    elif roll < 0.4:
        parts[-1] = "*"
    return "/".join(parts)


def random_topic(rng: random.Random) -> str:
    depth = rng.randint(1, 5)
    return "/".join(rng.choice(SEGMENTS) for _ in range(depth))


class TestEquivalenceWithLinearScan:
    """The trie must answer exactly like the old per-pattern linear scan."""

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_corpus(self, seed):
        rng = random.Random(seed)
        patterns = {random_pattern(rng) for _ in range(rng.randint(5, 60))}
        index = index_with_clients(sorted(patterns))
        for _ in range(200):
            topic = random_topic(rng)
            assert index.match_patterns(topic) == linear_match_patterns(
                patterns, topic
            ), f"divergence on topic {topic!r} with patterns {sorted(patterns)}"

    @pytest.mark.parametrize("seed", range(4))
    def test_equivalence_survives_random_removals(self, seed):
        rng = random.Random(1000 + seed)
        patterns = sorted({random_pattern(rng) for _ in range(40)})
        index = SubscriptionIndex()
        for i, pattern in enumerate(patterns):
            index.add_client(pattern, f"c{i}")
        alive = dict(enumerate(patterns))
        while alive:
            victims = rng.sample(sorted(alive), k=min(5, len(alive)))
            for i in victims:
                assert index.remove_client(alive[i], f"c{i}")
                del alive[i]
            for _ in range(50):
                topic = random_topic(rng)
                assert index.match_patterns(topic) == linear_match_patterns(
                    alive.values(), topic
                )
        assert index.node_count() == 0
