"""Tests for constrained-topic parsing and semantics (section 3.1)."""

import pytest

from repro.errors import TopicError
from repro.messaging.constrained import (
    AllowedActions,
    ConstrainedTopic,
    Distribution,
    is_constrained,
)


class TestParsing:
    def test_full_form(self):
        ct = ConstrainedTopic.parse(
            "/Constrained/Traces/Broker/Subscribe-Only/Limited/Trace-Topic/SessionId"
        )
        assert ct.event_type == "Traces"
        assert ct.constrainer == "Broker"
        assert ct.allowed_actions is AllowedActions.SUBSCRIBE_ONLY
        assert ct.distribution is Distribution.SUPPRESS
        assert ct.suffixes == ("Trace-Topic", "SessionId")

    def test_paper_equivalence_example(self):
        """The paper's two spellings parse identically."""
        a = ConstrainedTopic.parse("/Constrained/Traces/Broker/PublishSubscribe/Limited")
        b = ConstrainedTopic.parse("/Constrained/Traces/Limited")
        assert a == b

    def test_defaults(self):
        ct = ConstrainedTopic.parse("Constrained")
        assert ct.event_type == "RealTime"
        assert ct.constrainer == "Broker"
        assert ct.allowed_actions is AllowedActions.PUBLISH_SUBSCRIBE
        assert ct.distribution is Distribution.DISSEMINATE
        assert ct.suffixes == ()

    def test_entity_constrainer(self):
        ct = ConstrainedTopic.parse(
            "Constrained/Traces/svc-1/Subscribe-Only/abc123/def456"
        )
        assert ct.constrainer == "svc-1"
        assert not ct.broker_constrained()
        assert ct.suffixes == ("abc123", "def456")

    def test_registration_topic(self):
        ct = ConstrainedTopic.parse(
            "Constrained/Traces/Broker/Subscribe-Only/Registration"
        )
        assert ct.allowed_actions is AllowedActions.SUBSCRIBE_ONLY
        assert ct.distribution is Distribution.DISSEMINATE
        assert ct.suffixes == ("Registration",)

    def test_publish_only_spellings(self):
        for spelling in ("Publish-Only", "Publish_Only", "PublishOnly"):
            ct = ConstrainedTopic.parse(f"Constrained/Traces/Broker/{spelling}/x")
            assert ct.allowed_actions is AllowedActions.PUBLISH_ONLY

    def test_not_constrained_raises(self):
        with pytest.raises(TopicError):
            ConstrainedTopic.parse("Traces/whatever")

    def test_suffix_keywords_not_reinterpreted(self):
        ct = ConstrainedTopic.parse(
            "Constrained/Traces/Broker/Publish-Only/Disseminate/Suppress/Broker"
        )
        assert ct.distribution is Distribution.DISSEMINATE
        assert ct.suffixes == ("Suppress", "Broker")

    def test_canonical_roundtrip(self):
        ct = ConstrainedTopic.parse("Constrained/Traces/Limited")
        assert ConstrainedTopic.parse(ct.canonical) == ct

    def test_build(self):
        ct = ConstrainedTopic.build(
            "Traces", "Broker", AllowedActions.PUBLISH_ONLY,
            Distribution.DISSEMINATE, "topic-hex", "Load",
        )
        assert ct.canonical == (
            "Constrained/Traces/Broker/Publish-Only/Disseminate/topic-hex/Load"
        )


class TestIsConstrained:
    def test_positive(self):
        assert is_constrained("Constrained/Traces")
        assert is_constrained("/Constrained/X")

    def test_negative(self):
        assert not is_constrained("Traces/Constrained")
        assert not is_constrained("News/Sports")
        assert not is_constrained("")


class TestActionSemantics:
    """The paper's rules: Publish-Only lets entities subscribe; Subscribe-
    Only forbids entity subscription; PublishSubscribe forbids both."""

    def test_publish_only(self):
        ct = ConstrainedTopic.parse("Constrained/Traces/Broker/Publish-Only/x")
        assert ct.may_publish("broker-1", is_broker=True)
        assert not ct.may_publish("entity-1", is_broker=False)
        assert ct.may_subscribe("entity-1", is_broker=False)  # anyone subscribes

    def test_subscribe_only(self):
        ct = ConstrainedTopic.parse("Constrained/Traces/Broker/Subscribe-Only/x")
        assert ct.may_subscribe("b", is_broker=True)
        assert not ct.may_subscribe("entity-1", is_broker=False)
        assert ct.may_publish("entity-1", is_broker=False)  # funnel to constrainer

    def test_publish_subscribe_reserved(self):
        ct = ConstrainedTopic.parse("Constrained/Traces/Broker/PublishSubscribe/x")
        assert not ct.may_publish("entity-1", is_broker=False)
        assert not ct.may_subscribe("entity-1", is_broker=False)
        assert ct.may_publish("b", is_broker=True)
        assert ct.may_subscribe("b", is_broker=True)

    def test_entity_constrainer_semantics(self):
        ct = ConstrainedTopic.parse("Constrained/Traces/svc-1/Subscribe-Only/x")
        assert ct.may_subscribe("svc-1", is_broker=False)
        assert not ct.may_subscribe("svc-2", is_broker=False)
        # a broker is not the constrainer here
        assert not ct.may_subscribe("b0", is_broker=True)

    def test_suppressed(self):
        assert ConstrainedTopic.parse("Constrained/Traces/Limited").suppressed()
        assert ConstrainedTopic.parse("Constrained/Traces/Suppress").suppressed()
        assert not ConstrainedTopic.parse("Constrained/Traces/Disseminate").suppressed()
        assert not ConstrainedTopic.parse("Constrained/Traces").suppressed()
