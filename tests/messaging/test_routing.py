"""Tests for broker-graph routing tables."""

import pytest

from repro.errors import RoutingError
from repro.messaging.routing import all_next_hops, bfs_next_hops, hop_distance

CHAIN = {"a": {"b"}, "b": {"a", "c"}, "c": {"b", "d"}, "d": {"c"}}
STAR = {"hub": {"s1", "s2", "s3"}, "s1": {"hub"}, "s2": {"hub"}, "s3": {"hub"}}
RING = {"a": {"b", "d"}, "b": {"a", "c"}, "c": {"b", "d"}, "d": {"c", "a"}}


class TestNextHops:
    def test_chain(self):
        table = bfs_next_hops(CHAIN, "a")
        assert table == {"b": "b", "c": "b", "d": "b"}

    def test_star_from_spoke(self):
        table = bfs_next_hops(STAR, "s1")
        assert table["s2"] == "hub"
        assert table["s3"] == "hub"
        assert table["hub"] == "hub"

    def test_ring_prefers_shortest(self):
        table = bfs_next_hops(RING, "a")
        assert table["b"] == "b"
        assert table["d"] == "d"
        # c is equidistant; either neighbor is valid but choice is stable
        assert table["c"] in ("b", "d")
        assert bfs_next_hops(RING, "a")["c"] == table["c"]

    def test_unknown_source(self):
        with pytest.raises(RoutingError):
            bfs_next_hops(CHAIN, "zz")

    def test_disconnected_nodes_absent(self):
        graph = {"a": {"b"}, "b": {"a"}, "island": set()}
        table = bfs_next_hops(graph, "a")
        assert "island" not in table

    def test_all_next_hops(self):
        tables = all_next_hops(CHAIN)
        assert set(tables) == set(CHAIN)
        assert tables["d"]["a"] == "c"


class TestHopDistance:
    def test_chain_distances(self):
        assert hop_distance(CHAIN, "a", "a") == 0
        assert hop_distance(CHAIN, "a", "b") == 1
        assert hop_distance(CHAIN, "a", "d") == 3

    def test_ring_shortcut(self):
        assert hop_distance(RING, "a", "c") == 2

    def test_no_path(self):
        graph = {"a": set(), "b": set()}
        with pytest.raises(RoutingError):
            hop_distance(graph, "a", "b")

    def test_unknown_node(self):
        with pytest.raises(RoutingError):
            hop_distance(CHAIN, "zz", "a")


class TestRouteConsistency:
    def test_following_next_hops_reaches_destination(self):
        """Walking next-hop tables from any source reaches any dest."""
        for graph in (CHAIN, STAR, RING):
            tables = all_next_hops(graph)
            for src in graph:
                for dst in graph:
                    if src == dst:
                        continue
                    node, steps = src, 0
                    while node != dst:
                        node = tables[node][dst]
                        steps += 1
                        assert steps <= len(graph), "routing loop"
                    assert steps == hop_distance(graph, src, dst)
