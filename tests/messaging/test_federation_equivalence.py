"""Equivalence suite: summarized interest must route like verbatim flooding.

Every committed scenario stays within the federation hot-set limit, so
its summaries are exact and a federated fabric must deliver *exactly*
the frames the verbatim control plane delivers — same counters, same
snapshots, bit for bit.  This is the guarantee that lets the committed
seed snapshots keep gating a fabric whose control plane was swapped out.
"""

import json
from pathlib import Path

import pytest

from repro.bench.routing_smoke import run_routing_smoke
from repro.faults.scenarios import SCENARIOS, run_scenario
from repro.faults.scenarios import render_snapshot as render_chaos
from repro.messaging.broker_network import BrokerNetwork
from repro.messaging.message import Message
from repro.messaging.topics import Topic
from repro.sim.engine import Simulator

RESULTS = Path(__file__).resolve().parents[2] / "benchmarks" / "results"


def build_fabric(topology: str, federation: bool, seed: int = 23) -> tuple:
    sim = Simulator()
    network = BrokerNetwork(sim, seed=seed, federation=federation)
    ids = ["b1", "b2", "b3", "b4"]
    for broker_id in ids:
        network.add_broker(broker_id)
    if topology == "chain":
        edges = list(zip(ids, ids[1:], strict=False))
    elif topology == "ring":
        edges = list(zip(ids, ids[1:], strict=False)) + [(ids[-1], ids[0])]
    elif topology == "star":
        edges = [(ids[0], spoke) for spoke in ids[1:]]
    else:  # pragma: no cover - guard for new parametrizations
        raise AssertionError(topology)
    for a, b in edges:
        network.connect_brokers(a, b)
    return sim, network


SUBSCRIPTIONS = [
    ("b2", "alerts/>"),
    ("b3", "alerts/disk/*"),
    ("b4", "metrics/cpu"),
    ("b4", "alerts/disk/full"),
]

PUBLISHES = [
    ("b1", "alerts/disk/full"),
    ("b1", "metrics/cpu"),
    ("b2", "alerts/net/down"),
    ("b3", "metrics/ram"),  # nobody wants this
    ("b4", "alerts/disk/slow"),
]


def run_traffic(topology: str, federation: bool) -> dict:
    """Drive the same subscribe/publish script; return delivery log + counters."""
    sim, network = build_fabric(topology, federation)
    received: dict[str, list[tuple[str, int]]] = {}
    for broker_id, pattern in SUBSCRIPTIONS:
        log = received.setdefault(broker_id, [])
        network.broker(broker_id).subscribe_local(
            pattern, lambda m, log=log: log.append((str(m.topic), m.body))
        )
    for index, (origin, topic) in enumerate(PUBLISHES):
        network.broker(origin).publish_from_broker(
            Message(topic=Topic(topic), body=index, source=origin, message_id=index)
        )
    sim.run()
    metrics = network.monitor.metrics
    return {
        "received": {k: sorted(v) for k, v in sorted(received.items())},
        "delivered": metrics.counter_value("broker.msgs.delivered"),
        "forwarded": metrics.counter_value("broker.msgs.forwarded_out"),
        "unroutable": metrics.counter_value("broker.msgs.unroutable"),
        "stale": metrics.counter_value("broker.interest.stale_forwards"),
        "false_positives": metrics.counter_value("fed.forwards.false_positive"),
    }


class TestTopologyEquivalence:
    @pytest.mark.parametrize("topology", ["chain", "ring", "star"])
    def test_same_deliveries_and_counters(self, topology):
        verbatim = run_traffic(topology, federation=False)
        federated = run_traffic(topology, federation=True)
        assert federated["received"] == verbatim["received"]
        assert federated["delivered"] == verbatim["delivered"]
        assert federated["forwarded"] == verbatim["forwarded"]
        assert federated["unroutable"] == verbatim["unroutable"]
        assert federated["stale"] == verbatim["stale"] == 0
        # exact summaries: summarization introduces zero waste here
        assert federated["false_positives"] == 0


class TestScenarioEquivalence:
    def test_routing_smoke_matches_committed_seed(self):
        """The federated routing smoke reproduces the committed verbatim
        seed's counters exactly — control-plane swap, zero data-plane
        drift.  The pattern-entry gauge is legitimately *lower*: peers no
        longer mirror remote interest into their local indexes."""
        snapshot = run_routing_smoke(federation=True)
        committed = json.loads((RESULTS / "routing_seed.json").read_text())
        assert snapshot["counters"] == committed["counters"]
        assert (
            snapshot["interest_patterns_gauge"]
            < committed["interest_patterns_gauge"]
        )

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_chaos_scenarios_match_verbatim(self, scenario):
        """Every chaos scenario (crash, partition, loss, delay, churn)
        produces the identical snapshot under federation."""
        federated = run_scenario(scenario, federation=True)
        verbatim = run_scenario(scenario, federation=False)
        assert render_chaos(federated) == render_chaos(verbatim)

    def test_broker_crash_matches_committed_seed(self):
        snapshot = run_scenario("broker-crash", federation=True)
        committed = json.loads((RESULTS / "chaos_seed.json").read_text())
        assert render_chaos(snapshot) == render_chaos(committed)


class TestLateJoiner:
    @pytest.mark.parametrize("federation", [False, True])
    def test_late_joiner_routes_established_interest(self, federation):
        """A broker added after subscriptions exist must route toward them
        — via one summary per peer when federated, not a pattern replay."""
        sim = Simulator()
        network = BrokerNetwork(sim, seed=5, federation=federation)
        network.build_chain(["b1", "b2"])
        seen: list[int] = []
        network.broker("b1").subscribe_local("late/topic", lambda m: seen.append(m.body))
        sim.run()

        network.add_broker("b3")
        network.connect_brokers("b2", "b3")
        network.broker("b3").publish_from_broker(
            Message(topic=Topic("late/topic"), body=42, source="b3", message_id=900)
        )
        sim.run()
        assert seen == [42]
        if federation:
            floods = network.monitor.count("control.floods")
            assert floods <= 1  # one summary broadcast, however many patterns

    def test_late_joiner_summary_replay_is_per_peer(self):
        sim = Simulator()
        network = BrokerNetwork(sim, seed=5, federation=True)
        network.build_chain(["b1", "b2"])
        for i in range(10):
            network.broker("b1").subscribe_local(f"t/{i}", lambda m: None)
        network.broker("b1")._interested_brokers("t/0")  # force a flush
        network.add_broker("b3")
        # one replay for b1's (10-pattern) summary; b2 has no interest
        assert network.monitor.metrics.counter_value("fed.summary.replays") == 1


class TestPartitionHealReconvergence:
    @pytest.mark.parametrize("federation", [False, True])
    def test_delivery_resumes_after_heal(self, federation):
        """Partition the only path, publish (unroutable), heal, publish:
        both planes reconverge to identical routing."""
        sim = Simulator()
        network = BrokerNetwork(sim, seed=9, federation=federation)
        network.build_chain(["b1", "b2", "b3"])
        seen: list[int] = []
        network.broker("b3").subscribe_local("p/t", lambda m: seen.append(m.body))
        sim.run()

        network.partition_link("b2", "b3")
        network.broker("b1").publish_from_broker(
            Message(topic=Topic("p/t"), body=1, source="b1", message_id=901)
        )
        sim.run()
        assert seen == []

        network.heal_link("b2", "b3")
        network.broker("b1").publish_from_broker(
            Message(topic=Topic("p/t"), body=2, source="b1", message_id=902)
        )
        sim.run()
        assert seen == [2]
        assert (
            network.monitor.metrics.counter_value("broker.interest.stale_forwards")
            == 0
        )
