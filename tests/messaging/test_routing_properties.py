"""Property-based routing tests over random connected graphs."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.messaging.routing import all_next_hops, bfs_next_hops, hop_distance


@st.composite
def connected_graphs(draw):
    """A random connected undirected graph as an adjacency dict."""
    n = draw(st.integers(min_value=2, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    p = draw(st.floats(min_value=0.2, max_value=0.9))
    graph = nx.gnp_random_graph(n, p, seed=seed)
    # force connectivity by chaining components
    components = [list(c) for c in nx.connected_components(graph)]
    for a, b in zip(components, components[1:], strict=False):
        graph.add_edge(a[0], b[0])
    return {node: set(graph.neighbors(node)) for node in graph.nodes}


class TestRoutingProperties:
    @given(connected_graphs())
    @settings(max_examples=50, deadline=None)
    def test_walk_reaches_destination_in_shortest_hops(self, adjacency):
        tables = all_next_hops(adjacency)
        nodes = sorted(adjacency)
        for src in nodes:
            for dst in nodes:
                if src == dst:
                    continue
                node, steps = src, 0
                while node != dst:
                    node = tables[node][dst]
                    steps += 1
                    assert steps <= len(nodes), "routing loop"
                assert steps == hop_distance(adjacency, src, dst)

    @given(connected_graphs())
    @settings(max_examples=50, deadline=None)
    def test_next_hop_is_a_neighbor(self, adjacency):
        for src in adjacency:
            table = bfs_next_hops(adjacency, src)
            for dst, hop in table.items():
                assert hop in adjacency[src]

    @given(connected_graphs())
    @settings(max_examples=50, deadline=None)
    def test_distance_symmetric(self, adjacency):
        nodes = sorted(adjacency)
        for src in nodes[:4]:
            for dst in nodes[:4]:
                assert hop_distance(adjacency, src, dst) == hop_distance(
                    adjacency, dst, src
                )

    @given(connected_graphs())
    @settings(max_examples=50, deadline=None)
    def test_triangle_inequality(self, adjacency):
        nodes = sorted(adjacency)[:5]
        for a in nodes:
            for b in nodes:
                for c in nodes:
                    assert hop_distance(adjacency, a, c) <= hop_distance(
                        adjacency, a, b
                    ) + hop_distance(adjacency, b, c)
