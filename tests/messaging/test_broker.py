"""Tests for broker behaviour: pub/sub, enforcement, DoS handling."""

import pytest

from repro.errors import UnauthorizedError
from repro.messaging.broker_network import BrokerNetwork
from repro.messaging.message import Message
from repro.messaging.topics import Topic
from repro.sim.engine import Simulator


@pytest.fixture
def net():
    sim = Simulator()
    network = BrokerNetwork(sim, seed=11)
    network.build_chain(["b1", "b2", "b3"])
    return sim, network


def make_client(network, name, broker):
    client = network.add_client(name)
    network.connect_client(client, broker)
    return client


class TestLocalPubSub:
    def test_same_broker_delivery(self, net):
        sim, network = net
        pub = make_client(network, "pub", "b1")
        sub = make_client(network, "sub", "b1")
        got = []
        sub.subscribe("news/local", lambda m: got.append(m.body))
        pub.publish("news/local", {"v": 1})
        sim.run()
        assert got == [{"v": 1}]

    def test_publisher_does_not_hear_itself(self, net):
        sim, network = net
        client = make_client(network, "c", "b1")
        got = []
        client.subscribe("self/topic", lambda m: got.append(m))
        client.publish("self/topic", "x")
        sim.run()
        assert got == []

    def test_wildcard_subscription(self, net):
        sim, network = net
        pub = make_client(network, "pub", "b1")
        sub = make_client(network, "sub", "b1")
        got = []
        sub.subscribe("metrics/>", lambda m: got.append(m.topic.canonical))
        pub.publish("metrics/cpu/core0", 0.5)
        pub.publish("metrics/mem", 0.7)
        pub.publish("other/cpu", 0.1)
        sim.run()
        assert sorted(got) == ["metrics/cpu/core0", "metrics/mem"]

    def test_unsubscribe_stops_delivery(self, net):
        sim, network = net
        pub = make_client(network, "pub", "b1")
        sub = make_client(network, "sub", "b1")
        got = []
        handler = lambda m: got.append(m.body)
        sub.subscribe("t/x", handler)
        pub.publish("t/x", 1)
        sim.run()
        sub.unsubscribe("t/x", handler)
        pub.publish("t/x", 2)
        sim.run()
        assert got == [1]


class TestMultiHopRouting:
    def test_two_hop_delivery(self, net):
        sim, network = net
        pub = make_client(network, "pub", "b1")
        sub = make_client(network, "sub", "b3")
        got = []
        sub.subscribe("far/topic", lambda m: got.append(m))
        pub.publish("far/topic", "payload")
        sim.run()
        assert len(got) == 1
        assert got[0].hops == 2  # b1 -> b2 -> b3

    def test_no_interest_no_forwarding(self, net):
        sim, network = net
        pub = make_client(network, "pub", "b1")
        before = network.broker("b1").monitor.count("messages.forwarded_out")
        pub.publish("nobody/listens", 1)
        sim.run()
        after = network.broker("b1").monitor.count("messages.forwarded_out")
        assert after == before

    def test_multiple_subscribers_across_brokers(self, net):
        sim, network = net
        pub = make_client(network, "pub", "b2")
        got = []
        for i, broker in enumerate(["b1", "b2", "b3"]):
            sub = make_client(network, f"sub{i}", broker)
            sub.subscribe("fan/out", lambda m, i=i: got.append(i))
        pub.publish("fan/out", "x")
        sim.run()
        assert sorted(got) == [0, 1, 2]

    def test_no_duplicate_delivery(self, net):
        sim, network = net
        # add a redundant link making a ring: b1-b2-b3 plus b1-b3
        network.connect_brokers("b1", "b3")
        pub = make_client(network, "pub", "b1")
        sub = make_client(network, "sub", "b3")
        got = []
        sub.subscribe("ring/topic", lambda m: got.append(m))
        pub.publish("ring/topic", 1)
        sim.run()
        assert len(got) == 1
        assert got[0].hops == 1  # direct link preferred


class TestConstrainedEnforcement:
    def test_subscribe_only_rejects_entity_subscription(self, net):
        sim, network = net
        client = make_client(network, "eve", "b1")
        with pytest.raises(UnauthorizedError):
            client.subscribe(
                "Constrained/Traces/Broker/Subscribe-Only/Registration",
                lambda m: None,
            )

    def test_entity_constrainer_may_subscribe(self, net):
        sim, network = net
        client = make_client(network, "svc-1", "b1")
        client.subscribe(
            "Constrained/Traces/svc-1/Subscribe-Only/tt/ss", lambda m: None
        )  # no exception

    def test_publish_only_rejects_entity_publish(self, net):
        sim, network = net
        client = make_client(network, "eve", "b1")
        watcher = make_client(network, "watcher", "b1")
        got = []
        watcher.subscribe(
            "Constrained/Traces/Broker/Publish-Only/tt/Load", lambda m: got.append(m)
        )
        client.publish("Constrained/Traces/Broker/Publish-Only/tt/Load", {"cpu": 1})
        sim.run()
        assert got == []
        assert network.broker("b1").monitor.count("messages.rejected_constrained") == 1

    def test_broker_publish_on_publish_only_allowed(self, net):
        sim, network = net
        watcher = make_client(network, "watcher", "b1")
        got = []
        watcher.subscribe(
            "Constrained/Traces/Broker/Publish-Only/tt/Load", lambda m: got.append(m)
        )
        broker = network.broker("b1")
        broker.publish_from_broker(
            Message(
                topic=Topic.parse("Constrained/Traces/Broker/Publish-Only/tt/Load"),
                body={"cpu": 0.5},
                source="b1",
            )
        )
        sim.run()
        assert len(got) == 1

    def test_suppressed_broker_subscription_stays_local(self, net):
        sim, network = net
        # broker b3 subscribes to a Limited session topic
        topic = "Constrained/Traces/Broker/Subscribe-Only/Limited/tt/ss"
        got = []
        network.broker("b3").subscribe_local(topic, lambda m: got.append(m))
        # b1 and b2 must NOT have learned remote interest for it
        assert network.broker("b1")._interested_brokers(topic) == set()
        # an entity publishing at b3 still reaches the local broker handler
        client = make_client(network, "svc", "b3")
        client.publish(topic, {"kind": "ping_response"})
        sim.run()
        assert len(got) == 1


class TestDoSDefense:
    def test_repeated_violations_terminate_client(self, net):
        sim, network = net
        broker = network.broker("b1")
        mallory = make_client(network, "mallory", "b1")
        for _ in range(broker.violation_limit):
            mallory.publish(
                "Constrained/Traces/Broker/Publish-Only/tt/Load", {"fake": 1}
            )
            sim.run()
        assert broker.is_blacklisted("mallory")
        assert "mallory" not in broker.client_ids

    def test_blacklisted_messages_dropped(self, net):
        sim, network = net
        broker = network.broker("b1")
        mallory = make_client(network, "mallory", "b1")
        broker.terminate_client("mallory")
        before = broker.monitor.count("messages.received")
        # the link still exists client-side; sends are dropped at ingress
        mallory.publish("any/topic", 1)
        sim.run()
        assert broker.monitor.count("messages.received") == before
        assert broker.monitor.count("dos.dropped_blacklisted") >= 1

    def test_blacklisted_cannot_resubscribe(self, net):
        sim, network = net
        broker = network.broker("b1")
        mallory = make_client(network, "mallory", "b1")
        broker.terminate_client("mallory")
        with pytest.raises(UnauthorizedError):
            broker.add_client_subscription("mallory", "any/topic")

    def test_violation_counts_tracked(self, net):
        sim, network = net
        broker = network.broker("b1")
        mallory = make_client(network, "mallory", "b1")
        mallory.publish("Constrained/Traces/Broker/Publish-Only/tt/Load", 1)
        sim.run()
        assert broker.violation_count("mallory") == 1


class TestGuards:
    def test_guard_can_reject(self, net):
        sim, network = net
        broker = network.broker("b1")

        def deny_all(broker_, message, origin, from_neighbor):
            return False
            yield  # pragma: no cover - makes this a generator

        broker.publish_guards.append(deny_all)
        pub = make_client(network, "pub", "b1")
        sub = make_client(network, "sub", "b1")
        got = []
        sub.subscribe("t/x", lambda m: got.append(m))
        pub.publish("t/x", 1)
        sim.run()
        assert got == []
        assert broker.monitor.count("messages.rejected_guard") == 1

    def test_guard_charges_time(self, net):
        sim, network = net
        broker = network.broker("b1")

        def slow_guard(broker_, message, origin, from_neighbor):
            yield broker_.sim.timeout(50.0)
            return True

        broker.publish_guards.append(slow_guard)
        pub = make_client(network, "pub", "b1")
        sub = make_client(network, "sub", "b1")
        got = []
        sub.subscribe("t/x", lambda m: got.append(sim.now))
        pub.publish("t/x", 1)
        sim.run()
        assert got and got[0] > 50.0


class TestPublishSuppression:
    def test_suppressed_publication_stays_local(self, net):
        """Publish-Only + Suppress: the constrainer's publications are not
        distributed to other brokers (section 3.1)."""
        sim, network = net
        topic = "Constrained/Traces/Broker/Publish-Only/Suppress/tt/Local"
        remote = make_client(network, "remote-sub", "b3")
        local = make_client(network, "local-sub", "b1")
        got_remote, got_local = [], []
        remote.subscribe(topic, lambda m: got_remote.append(m))
        local.subscribe(topic, lambda m: got_local.append(m))

        broker = network.broker("b1")
        broker.publish_from_broker(
            Message(topic=Topic.parse(topic), body={"x": 1}, source="b1")
        )
        sim.run()
        assert got_local and not got_remote
        assert broker.monitor.count("messages.suppressed") == 1

    def test_disseminate_publication_propagates(self, net):
        sim, network = net
        topic = "Constrained/Traces/Broker/Publish-Only/Disseminate/tt/Wide"
        remote = make_client(network, "remote-sub", "b3")
        got = []
        remote.subscribe(topic, lambda m: got.append(m))
        network.broker("b1").publish_from_broker(
            Message(topic=Topic.parse(topic), body={"x": 1}, source="b1")
        )
        sim.run()
        assert got


class TestBrokerFailureFlag:
    def test_failed_broker_drops_client_traffic(self, net):
        sim, network = net
        client = make_client(network, "c", "b1")
        network.broker("b1").failed = True
        before = network.broker("b1").monitor.count("messages.received")
        client.publish("any/topic", 1)
        sim.run()
        assert network.broker("b1").monitor.count("messages.received") == before


class TestInterestRetraction:
    def test_unsubscribe_stops_remote_forwarding(self, net):
        """When the last subscriber at a broker unsubscribes, remote
        brokers stop forwarding matching traffic to it."""
        sim, network = net
        pub = make_client(network, "pub", "b1")
        sub = make_client(network, "sub", "b3")
        got = []
        handler = lambda m: got.append(m)
        sub.subscribe("retract/topic", handler)
        pub.publish("retract/topic", 1)
        sim.run()
        assert len(got) == 1
        forwarded_before = network.broker("b1").monitor.count("messages.forwarded_out")

        sub.unsubscribe("retract/topic", handler)
        pub.publish("retract/topic", 2)
        sim.run()
        assert len(got) == 1  # nothing new delivered
        # and nothing was even forwarded toward b3
        assert network.broker("b1").monitor.count("messages.forwarded_out") \
            == forwarded_before

    def test_retraction_only_when_last_subscriber_leaves(self, net):
        sim, network = net
        pub = make_client(network, "pub", "b1")
        sub_a = make_client(network, "sub-a", "b3")
        sub_b = make_client(network, "sub-b", "b3")
        got_a, got_b = [], []
        handler_a = lambda m: got_a.append(m)
        sub_a.subscribe("shared/topic", handler_a)
        sub_b.subscribe("shared/topic", lambda m: got_b.append(m))

        sub_a.unsubscribe("shared/topic", handler_a)
        pub.publish("shared/topic", 1)
        sim.run()
        assert got_a == []
        assert len(got_b) == 1  # b remains subscribed; interest not retracted

    def test_broker_local_unsubscribe_retracts(self, net):
        sim, network = net
        handler = lambda m: None
        network.broker("b3").subscribe_local("admin/topic", handler)
        assert network.broker("b1")._interested_brokers("admin/topic") == {"b3"}
        network.broker("b3").unsubscribe_local("admin/topic", handler)
        assert network.broker("b1")._interested_brokers("admin/topic") == set()
