"""Tests for the broker discovery service."""

import pytest

from repro.errors import DiscoveryError
from repro.messaging.broker_network import BrokerNetwork
from repro.messaging.discovery import BrokerDiscoveryService, PlacementPolicy
from repro.sim.engine import Simulator


@pytest.fixture
def setup():
    sim = Simulator()
    network = BrokerNetwork(sim, seed=0)
    network.build_chain(["b1", "b2", "b3"])
    service = BrokerDiscoveryService(sim)
    for broker in network.brokers():
        service.register_broker(broker)
    return sim, network, service


class TestDiscovery:
    def test_charges_response_delay(self, setup):
        sim, _, service = setup
        broker = sim.run_process(service.discover())
        assert sim.now == pytest.approx(service.response_delay_ms)
        assert broker.broker_id in ("b1", "b2", "b3")

    def test_round_robin_cycles(self, setup):
        sim, _, service = setup
        seen = [
            sim.run_process(service.discover(PlacementPolicy.ROUND_ROBIN)).broker_id
            for _ in range(6)
        ]
        assert seen == ["b1", "b2", "b3", "b1", "b2", "b3"]

    def test_first_policy(self, setup):
        sim, _, service = setup
        assert sim.run_process(service.discover(PlacementPolicy.FIRST)).broker_id == "b1"

    def test_least_loaded(self, setup):
        sim, network, service = setup
        for i in range(3):
            client = network.add_client(f"c{i}")
            network.connect_client(client, "b1")
        chosen = sim.run_process(service.discover(PlacementPolicy.LEAST_LOADED))
        assert chosen.broker_id in ("b2", "b3")

    def test_no_brokers_raises(self):
        sim = Simulator()
        service = BrokerDiscoveryService(sim)
        with pytest.raises(DiscoveryError):
            sim.run_process(service.discover())

    def test_deregister(self, setup):
        sim, _, service = setup
        service.deregister_broker("b1")
        assert service.known_brokers() == ["b2", "b3"]
        assert sim.run_process(service.discover(PlacementPolicy.FIRST)).broker_id == "b2"
