"""Tier-1 mirror of the CI docs link-checker (tools/check_doc_links.py)."""

import importlib.util
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
TOOL = REPO_ROOT / "tools" / "check_doc_links.py"


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location("check_doc_links", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_no_broken_relative_links(checker):
    findings = checker.broken_links(REPO_ROOT)
    assert not findings, "broken doc links:\n" + "\n".join(findings)


def test_checker_covers_readme_and_docs(checker):
    files = {p.name for p in checker.doc_files(REPO_ROOT)}
    assert "README.md" in files
    assert "FAULTS.md" in files
    assert "ARCHITECTURE.md" in files


def test_checker_detects_breakage(checker, tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "[ok](docs/REAL.md) [bad](docs/MISSING.md) [ext](https://example.com) "
        "[anchor](#section)\n"
    )
    (tmp_path / "docs" / "REAL.md").write_text("[up](../README.md#quick)\n")
    findings = checker.broken_links(tmp_path)
    assert findings == ["README.md: docs/MISSING.md"]
