"""Tier-1 mirror of the CI docs link-checker (tools/check_doc_links.py)."""

import importlib.util
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
TOOL = REPO_ROOT / "tools" / "check_doc_links.py"


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location("check_doc_links", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_no_broken_relative_links(checker):
    findings = checker.broken_links(REPO_ROOT)
    assert not findings, "broken doc links:\n" + "\n".join(findings)


def test_checker_covers_readme_and_docs(checker):
    files = {p.name for p in checker.doc_files(REPO_ROOT)}
    assert "README.md" in files
    assert "FAULTS.md" in files
    assert "ARCHITECTURE.md" in files


def test_checker_detects_breakage(checker, tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "[ok](docs/REAL.md) [bad](docs/MISSING.md) [ext](https://example.com) "
        "[anchor](#section)\n"
    )
    (tmp_path / "docs" / "REAL.md").write_text("[up](../README.md#quick)\n")
    findings = checker.broken_links(tmp_path)
    assert findings == ["README.md: docs/MISSING.md"]


def test_every_doc_reachable_from_readme(checker):
    findings = checker.unreachable_docs(REPO_ROOT)
    assert not findings, "docs unreachable from README:\n" + "\n".join(findings)


def test_reachability_detects_orphan(checker, tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text("[a](docs/A.md)\n")
    (tmp_path / "docs" / "A.md").write_text("[b](B.md#anchor)\n")
    (tmp_path / "docs" / "B.md").write_text("no links\n")
    (tmp_path / "docs" / "ORPHAN.md").write_text("nobody links here\n")
    assert checker.unreachable_docs(tmp_path) == ["docs/ORPHAN.md"]


def test_analytics_instruments_documented(checker):
    findings = checker.undocumented_analytics_instruments(REPO_ROOT)
    assert not findings, (
        "analytics instruments missing from docs/OBSERVABILITY.md:\n"
        + "\n".join(findings)
    )


def test_analytics_instrument_check_detects_gap(checker, tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "src").mkdir()
    (tmp_path / "docs" / "OBSERVABILITY.md").write_text(
        "documented: `analytics.events.ingested`\n"
    )
    (tmp_path / "src" / "mod.py").write_text(
        'registry.counter("analytics.events.ingested")\n'
        'registry.gauge("analytics.store.undocumented")\n'
    )
    assert checker.undocumented_analytics_instruments(tmp_path) == [
        "`analytics.store.undocumented`"
    ]
