"""Tests for transport profiles."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.transport.base import TransportProfile, wire_size
from repro.transport.tcp import TCP_CLUSTER, tcp_profile
from repro.transport.udp import UDP_CLUSTER, udp_profile


class TestProfiles:
    def test_tcp_is_reliable_ordered(self):
        assert TCP_CLUSTER.reliable and TCP_CLUSTER.ordered

    def test_udp_is_unreliable_unordered(self):
        assert not UDP_CLUSTER.reliable and not UDP_CLUSTER.ordered

    def test_udp_cheaper_than_tcp(self):
        """The Table 3 premise: UDP latency < TCP latency per hop."""
        assert UDP_CLUSTER.base_latency_ms < TCP_CLUSTER.base_latency_ms

    def test_cluster_latency_in_paper_band(self):
        """Per-hop communications latency around 1-2 ms (section 6.1)."""
        assert 0.5 <= UDP_CLUSTER.base_latency_ms <= 2.0
        assert 1.0 <= TCP_CLUSTER.base_latency_ms <= 2.0

    def test_latency_scales_with_size(self):
        rng = random.Random(0)
        profile = tcp_profile(jitter_ms=0.0)
        small = profile.sample_latency_ms(100, rng)
        large = profile.sample_latency_ms(100_000, rng)
        assert large > small
        assert large - small == pytest.approx(
            profile.per_kb_ms * (100_000 - 100) / 1024.0
        )

    def test_latency_never_negative(self):
        rng = random.Random(1)
        profile = udp_profile(base_latency_ms=0.1, jitter_ms=5.0)
        assert all(profile.sample_latency_ms(10, rng) >= 0.01 for _ in range(500))

    def test_loss_sampling_rate(self):
        rng = random.Random(2)
        profile = udp_profile(loss_probability=0.3)
        losses = sum(profile.sample_loss(rng) for _ in range(5000))
        assert 0.25 < losses / 5000 < 0.35

    def test_zero_loss_never_drops(self):
        rng = random.Random(3)
        assert not any(UDP_CLUSTER.sample_loss(rng) for _ in range(100))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TransportProfile("x", -1, 0, 0, 0, True, True)
        with pytest.raises(ConfigurationError):
            TransportProfile("x", 1, 0, 0, 1.5, True, True)
        with pytest.raises(ConfigurationError):
            # reliable + lossy requires a retransmit timeout
            TransportProfile("x", 1, 0, 0, 0.1, True, True, retransmit_timeout_ms=0)


class TestWireSize:
    def test_size_of_plain_values(self):
        assert wire_size(b"1234") > 4
        assert wire_size({"a": 1}) > wire_size({})

    def test_uses_wire_dict_when_available(self):
        class Enveloped:
            def wire_dict(self):
                return {"payload": "x" * 100}

        assert wire_size(Enveloped()) > 100
