"""Tests for simulated links."""

import random

import pytest

from repro.sim.engine import Simulator
from repro.transport.link import DuplexLink, Link
from repro.transport.tcp import tcp_profile
from repro.transport.udp import udp_profile


def collect_link(sim, profile, seed=0):
    received = []
    link = Link(
        sim, profile,
        receiver=lambda payload: received.append((sim.now, payload)),
        rng=random.Random(seed),
        name="test-link",
    )
    return link, received


class TestDelivery:
    def test_delivers_after_latency(self, sim):
        link, received = collect_link(sim, tcp_profile(jitter_ms=0.0))
        receipt = link.send({"n": 1})
        assert receipt.delivered
        sim.run()
        assert len(received) == 1
        assert received[0][0] == pytest.approx(receipt.latency_ms)

    def test_tcp_preserves_order(self, sim):
        link, received = collect_link(sim, tcp_profile(jitter_ms=2.0), seed=3)
        for i in range(50):
            link.send(i)
        sim.run()
        assert [p for _, p in received] == list(range(50))

    def test_udp_can_reorder(self, sim):
        link, received = collect_link(sim, udp_profile(jitter_ms=1.5), seed=4)
        for i in range(200):
            link.send(i)
        sim.run()
        payloads = [p for _, p in received]
        assert sorted(payloads) == list(range(200))
        assert payloads != list(range(200))  # at least one reordering

    def test_udp_drops_on_loss(self, sim):
        link, received = collect_link(
            sim, udp_profile(loss_probability=0.5), seed=5
        )
        receipts = [link.send(i) for i in range(400)]
        sim.run()
        delivered = sum(1 for r in receipts if r.delivered)
        assert delivered == len(received)
        assert 120 < delivered < 280  # ~50% of 400
        assert link.dropped_count == 400 - delivered

    def test_tcp_retransmits_instead_of_dropping(self, sim):
        profile = tcp_profile(loss_probability=0.3, retransmit_timeout_ms=40.0)
        link, received = collect_link(sim, profile, seed=6)
        receipts = [link.send(i) for i in range(200)]
        sim.run()
        assert len(received) == 200  # nothing lost
        assert link.retransmit_count > 0
        retransmitted = [r for r in receipts if r.retransmits > 0]
        assert retransmitted
        # every retransmission pays at least one timeout penalty
        assert all(
            r.latency_ms >= 40.0 * r.retransmits for r in retransmitted
        )
        # ordered delivery means later sends can inherit the delay
        # (head-of-line blocking): the very first receipt, if clean, is fast
        first = receipts[0]
        if first.retransmits == 0:
            assert first.latency_ms < 40.0

    def test_counters(self, sim):
        link, _ = collect_link(sim, tcp_profile())
        link.send(1)
        link.send(2)
        assert link.sent_count == 2
        assert link.delivered_count == 2


class TestDuplexLink:
    def test_both_directions(self, sim):
        at_a, at_b = [], []
        duplex = DuplexLink(
            sim, tcp_profile(),
            receiver_a=at_a.append, receiver_b=at_b.append,
            rng=random.Random(0),
        )
        duplex.a_to_b.send("to-b")
        duplex.b_to_a.send("to-a")
        sim.run()
        assert at_b == ["to-b"]
        assert at_a == ["to-a"]

    def test_profile_exposed(self, sim):
        duplex = DuplexLink(
            sim, udp_profile(),
            receiver_a=lambda p: None, receiver_b=lambda p: None,
            rng=random.Random(0),
        )
        assert duplex.profile.name == "UDP"
