"""Tests for the dependency-free SVG plotter."""

import xml.etree.ElementTree as ET

import pytest

from repro.bench.svgplot import Series, line_chart, series_dict_to_svg, _nice_ticks


DATA = {
    "tcp": [(2, 72.7), (3, 79.5), (4, 86.4)],
    "udp": [(2, 70.2), (3, 76.5), (4, 84.0)],
}


class TestNiceTicks:
    def test_round_values(self):
        ticks = _nice_ticks(0.0, 100.0)
        assert all(t % 20 == 0 or t % 25 == 0 or t % 10 == 0 for t in ticks)
        assert ticks[0] <= 0.0 + 25
        assert ticks[-1] >= 75

    def test_degenerate_range(self):
        ticks = _nice_ticks(5.0, 5.0)
        assert ticks  # still produces something sensible

    def test_monotone(self):
        ticks = _nice_ticks(12.3, 987.6)
        assert ticks == sorted(ticks)


class TestLineChart:
    def test_valid_xml(self):
        svg = series_dict_to_svg("T", "x", "y", DATA)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_contains_series_and_labels(self):
        svg = series_dict_to_svg("Figure 2", "hops", "ms", DATA)
        assert "Figure 2" in svg
        assert "tcp" in svg and "udp" in svg
        assert "hops" in svg and "ms" in svg

    def test_one_path_per_series(self):
        svg = series_dict_to_svg("T", "x", "y", DATA)
        assert svg.count("<path") == 2

    def test_points_rendered_as_circles(self):
        svg = series_dict_to_svg("T", "x", "y", DATA)
        assert svg.count("<circle") == 6

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart("T", "x", "y", [])
        with pytest.raises(ValueError):
            line_chart("T", "x", "y", [Series("empty", ())])

    def test_single_point_series(self):
        svg = line_chart("T", "x", "y", [Series("dot", ((1.0, 2.0),))])
        assert "<circle" in svg

    def test_title_escaped(self):
        svg = series_dict_to_svg("a < b & c", "x", "y", DATA)
        ET.fromstring(svg)  # parses despite special characters
        assert "a &lt; b &amp; c" in svg

    def test_y_from_zero(self):
        svg_zero = series_dict_to_svg("T", "x", "y", DATA, y_from_zero=True)
        svg_auto = series_dict_to_svg("T", "x", "y", DATA, y_from_zero=False)
        assert svg_zero != svg_auto
