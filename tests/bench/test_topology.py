"""Tests for the benchmark topology builders."""

import pytest

from repro.bench.topology import (
    MEASURE_HOST,
    hops_chain,
    single_broker_colocated,
    star_with_trackers,
)
from repro.transport.udp import udp_profile


class TestHopsChain:
    def test_two_hops_is_single_broker(self):
        dep, entity, tracker = hops_chain(2)
        assert len(dep.network.brokers()) == 1

    def test_six_hops_is_five_broker_chain(self):
        dep, entity, tracker = hops_chain(6)
        assert len(dep.network.brokers()) == 5
        assert dep.network.hop_distance("broker-0", "broker-4") == 4

    def test_entity_and_tracker_colocated(self):
        """The paper's clock-synchronization trick."""
        dep, entity, tracker = hops_chain(3)
        assert entity.machine is tracker.machine
        assert entity.machine.name == MEASURE_HOST

    def test_rejects_fewer_than_two_hops(self):
        with pytest.raises(ValueError):
            hops_chain(1)

    def test_profile_applied(self):
        dep, entity, tracker = hops_chain(3, profile=udp_profile())
        assert dep.default_profile.name == "UDP"

    def test_secured_flag_propagates(self):
        dep, entity, _ = hops_chain(2, secured=True)
        assert entity.secured


class TestStarWithTrackers:
    def test_groups_of_ten_per_machine(self):
        dep, entity, measuring, load = star_with_trackers(25)
        machines = {t.machine.name for t in load}
        assert machines == {"tracker-host-0", "tracker-host-1", "tracker-host-2"}
        assert len(load) == 25

    def test_zero_trackers_allowed(self):
        dep, entity, measuring, load = star_with_trackers(0)
        assert load == []

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            star_with_trackers(-1)

    def test_measuring_tracker_colocated_with_entity(self):
        dep, entity, measuring, _ = star_with_trackers(10)
        assert measuring.machine is entity.machine


class TestSingleBrokerColocated:
    def test_everyone_on_one_machine(self):
        dep, entities, trackers = single_broker_colocated(5, tracker_count=6)
        for principal in entities + trackers:
            assert principal.machine.name == MEASURE_HOST

    def test_shared_machine_has_one_cpu(self):
        dep, entities, trackers = single_broker_colocated(2, tracker_count=2)
        assert dep.network.machine(MEASURE_HOST).cpu.capacity == 1

    def test_counts(self):
        dep, entities, trackers = single_broker_colocated(10, tracker_count=30)
        assert len(entities) == 10
        assert len(trackers) == 30

    def test_trackers_are_passive_receivers(self):
        dep, entities, trackers = single_broker_colocated(2, tracker_count=2)
        assert all(not t.verify_traces for t in trackers)
