"""Unit tests for the perf-regression gate backing the ``perf-gate`` CI job."""

import json

import pytest

from repro.bench.perf_gate import (
    DEFAULT_TOLERANCE_PCT,
    GATED_COUNTERS,
    GATED_HISTOGRAMS,
    check_regressions,
    main,
)


def snapshot(bytes_sent=1000, fanout_sum=50.0, verify_sum=20.0):
    return {
        "counters": {"transport.bytes.sent": bytes_sent},
        "gauges": {},
        "histograms": {
            "broker.fanout": {"count": 10, "mean": fanout_sum / 10},
            "crypto.ms.token_verify": {"count": 4, "mean": verify_sum / 4},
        },
    }


class TestCheckRegressions:
    def test_identical_snapshots_pass(self):
        base = snapshot()
        assert check_regressions(base, base) == []

    def test_improvement_passes(self):
        assert check_regressions(snapshot(), snapshot(bytes_sent=500)) == []

    def test_counter_regression_past_tolerance_fails(self):
        findings = check_regressions(snapshot(), snapshot(bytes_sent=1030))
        assert len(findings) == 1
        assert "transport.bytes.sent" in findings[0]

    def test_regression_within_tolerance_passes(self):
        assert check_regressions(snapshot(), snapshot(bytes_sent=1019)) == []

    def test_histogram_sum_regression_fails(self):
        findings = check_regressions(snapshot(), snapshot(verify_sum=25.0))
        assert len(findings) == 1
        assert "crypto.ms.token_verify" in findings[0]

    def test_multiple_regressions_all_reported(self):
        worse = snapshot(bytes_sent=2000, fanout_sum=100.0, verify_sum=40.0)
        findings = check_regressions(snapshot(), worse)
        assert len(findings) == len(GATED_COUNTERS) + len(GATED_HISTOGRAMS)

    def test_metric_appearing_from_zero_fails(self):
        base = snapshot()
        base["counters"]["transport.bytes.sent"] = 0
        findings = check_regressions(base, snapshot())
        assert any("appeared" in f for f in findings)

    def test_custom_tolerance(self):
        current = snapshot(bytes_sent=1080)
        assert check_regressions(snapshot(), current, tolerance_pct=10.0) == []
        assert check_regressions(snapshot(), current, tolerance_pct=5.0)

    def test_default_tolerance_is_two_percent(self):
        assert DEFAULT_TOLERANCE_PCT == 2.0


class TestCommittedBaselines:
    """The repo's own committed baselines must gate themselves clean."""

    @pytest.mark.parametrize(
        "name", ["wire_codec_before.json", "wire_codec_after.json"]
    )
    def test_baseline_self_diff_is_clean(self, name, repo_root):
        path = repo_root / "benchmarks" / "results" / name
        baseline = json.loads(path.read_text())
        assert check_regressions(baseline, baseline) == []

    def test_compact_beats_json_by_acceptance_bar(self, repo_root):
        results = repo_root / "benchmarks" / "results"
        before = json.loads((results / "wire_codec_before.json").read_text())
        after = json.loads((results / "wire_codec_after.json").read_text())
        sent_json = before["counters"]["transport.bytes.sent"]
        sent_compact = after["counters"]["transport.bytes.sent"]
        assert sent_compact <= 0.75 * sent_json


@pytest.fixture
def repo_root(request):
    return request.config.rootpath


class TestCli:
    def test_missing_baseline_errors(self, tmp_path, capsys):
        from repro.errors import SerializationError

        with pytest.raises(SerializationError, match="cannot read snapshot"):
            main([str(tmp_path / "absent.json")])

    def test_clean_gate_exits_zero(self, tmp_path, capsys):
        # gate a fabricated infinitely-generous baseline: every metric
        # in the live run counts as an improvement or equality
        live_like = snapshot(bytes_sent=10**12, fanout_sum=1e9, verify_sum=1e9)
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(live_like))
        assert main([str(path), "--codec", "compact"]) == 0
        assert "perf gate clean" in capsys.readouterr().out
