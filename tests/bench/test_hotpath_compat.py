"""Compat gate: ``legacy_hot_paths=True`` reproduces the pre-optimization seeds.

The hot-path pass (token verification cache + ping coalescing,
docs/PERFORMANCE.md) re-seeded ``routing_seed.json`` and
``chaos_seed.json`` under the optimized defaults.  The old snapshots were
kept as ``*_legacy.json``, and this module proves the compat switch is
real: running the same scenarios with both optimizations disabled must
reproduce those legacy seeds exactly — bit-identical for the chaos
scenario.  If this fails, the "off" path stopped being the old code
path, which would silently invalidate every historical measurement.
"""

import json
from pathlib import Path

import pytest

from repro.bench import routing_smoke
from repro.faults import scenarios

RESULTS = Path(__file__).resolve().parents[2] / "benchmarks" / "results"


@pytest.fixture(scope="module")
def legacy_routing_seed():
    return json.loads((RESULTS / "routing_seed_legacy.json").read_text())


@pytest.fixture(scope="module")
def legacy_chaos_seed():
    return json.loads((RESULTS / "chaos_seed_legacy.json").read_text())


def test_routing_smoke_legacy_mode_matches_legacy_seed(legacy_routing_seed):
    live = routing_smoke.run_routing_smoke(legacy_hot_paths=True)
    assert routing_smoke.render_snapshot(live) == routing_smoke.render_snapshot(
        legacy_routing_seed
    )


def test_chaos_scenario_legacy_mode_matches_legacy_seed(legacy_chaos_seed):
    live = scenarios.run_scenario("broker-crash", legacy_hot_paths=True)
    findings = scenarios.compare_to_seed(live, legacy_chaos_seed)
    assert not findings, "\n".join(findings)
    assert scenarios.render_snapshot(live) == scenarios.render_snapshot(
        legacy_chaos_seed
    )


def test_legacy_and_default_seeds_differ():
    """The optimizations actually change the wire profile (else the
    legacy snapshots and this whole gate would be dead weight)."""
    default = json.loads((RESULTS / "chaos_seed.json").read_text())
    legacy = json.loads((RESULTS / "chaos_seed_legacy.json").read_text())
    assert default["counters"] != legacy["counters"]
