"""Tests for paper-vs-measured table rendering."""

from repro.bench.tables import ComparisonRow, render_comparison, render_series
from repro.util.stats import summarize


def make_row(label="case", paper=70.0, values=(71.0, 73.0)):
    return ComparisonRow(
        label=label,
        paper_mean=paper,
        paper_std=4.0,
        measured=summarize(list(values)),
    )


class TestComparisonRow:
    def test_delta(self):
        row = make_row(paper=70.0, values=(72.0, 72.0))
        assert row.delta_mean == 2.0

    def test_delta_none_without_paper_value(self):
        row = ComparisonRow("x", None, None, summarize([1.0]))
        assert row.delta_mean is None


class TestRenderComparison:
    def test_contains_all_fields(self):
        text = render_comparison("Title", [make_row("2 hops")])
        assert "Title" in text
        assert "2 hops" in text
        assert "70.00" in text  # paper mean
        assert "72.00" in text  # ours mean
        assert "+2.00" in text  # delta

    def test_missing_paper_values_render_dashes(self):
        row = ComparisonRow("novel case", None, None, summarize([5.0]))
        text = render_comparison("T", [row])
        assert "novel case" in text
        line = [l for l in text.splitlines() if "novel case" in l][0]
        assert " - " in line or line.rstrip().endswith("-")

    def test_multiple_rows_ordered(self):
        text = render_comparison("T", [make_row("first"), make_row("second")])
        assert text.index("first") < text.index("second")


class TestRenderSeries:
    def test_aligned_columns(self):
        text = render_series(
            "Fig", "hops",
            {"tcp": [(2, 70.0), (3, 80.0)], "udp": [(2, 68.0), (3, 77.0)]},
        )
        assert "Fig" in text
        assert "tcp" in text and "udp" in text
        assert "70.00" in text and "77.00" in text

    def test_missing_points_render_dash(self):
        text = render_series(
            "Fig", "x", {"a": [(1, 1.0), (2, 2.0)], "b": [(1, 10.0)]}
        )
        row2 = [l for l in text.splitlines() if l.strip().startswith("2")][0]
        assert "-" in row2

    def test_x_values_sorted(self):
        text = render_series("Fig", "x", {"a": [(3, 1.0), (1, 2.0)]})
        lines = [l for l in text.splitlines() if l.strip() and l.strip()[0].isdigit()]
        assert lines[0].strip().startswith("1")
