"""The committed fabric-scale seed must stay reproducible and gated."""

import json
from pathlib import Path

import pytest

from repro.bench.scale import (
    SMOKE_BROKERS,
    SMOKE_ENTITIES,
    SMOKE_EVENTS,
    compare_to_seed,
    render_snapshot,
    run_scale_point,
)
from repro.errors import ConfigurationError

SEED_FILE = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "results" / "scale_seed.json"
)


@pytest.fixture(scope="module")
def live_snapshot():
    return run_scale_point()


@pytest.fixture(scope="module")
def seed_snapshot():
    return json.loads(SEED_FILE.read_text())


class TestAgainstCommittedSeed:
    def test_no_drift(self, live_snapshot, seed_snapshot):
        assert compare_to_seed(live_snapshot, seed_snapshot) == []

    def test_snapshot_is_reproducible_exactly(self, live_snapshot, seed_snapshot):
        assert render_snapshot(live_snapshot) == render_snapshot(seed_snapshot)

    def test_scale_economics_hold(self, live_snapshot):
        """The claims the tentpole exists for, pinned at the smoke point."""
        assert live_snapshot["brokers"] == SMOKE_BROKERS
        assert live_snapshot["entities"] == SMOKE_ENTITIES
        # sub-linear control traffic: floods track brokers, not patterns
        assert live_snapshot["control_floods"] <= 2 * SMOKE_BROKERS
        assert live_snapshot["control_floods"] < SMOKE_ENTITIES // 100
        # every published event was delivered despite summarization
        assert live_snapshot["received"] == SMOKE_EVENTS
        assert live_snapshot["counters"]["broker.msgs.delivered"] == SMOKE_EVENTS
        assert live_snapshot["counters"]["broker.msgs.unroutable"] == 0
        # false positives are the budgeted cost; stale forwards stay a bug
        assert live_snapshot["counters"]["broker.interest.stale_forwards"] == 0

    def test_federated_memory_shape(self, live_snapshot):
        """Peers hold no mirrored remote interest: the deployment-wide
        pattern gauge equals the entity count exactly (verbatim flooding
        would multiply it by the broker count)."""
        assert live_snapshot["interest_patterns_gauge"] == SMOKE_ENTITIES
        assert live_snapshot["fed_patterns_gauge"] == SMOKE_ENTITIES
        assert live_snapshot["shards_gauge"] == SMOKE_BROKERS


class TestCompareToSeed:
    def test_flags_counter_drift(self, seed_snapshot):
        live = json.loads(json.dumps(seed_snapshot))
        live["counters"]["broker.msgs.delivered"] += 1
        assert compare_to_seed(live, seed_snapshot)

    def test_flags_shape_drift(self, seed_snapshot):
        live = json.loads(json.dumps(seed_snapshot))
        live["control_floods"] += 1
        findings = compare_to_seed(live, seed_snapshot)
        assert any("control_floods" in finding for finding in findings)

    def test_clean_on_identical(self, seed_snapshot):
        assert compare_to_seed(seed_snapshot, seed_snapshot) == []


class TestValidation:
    def test_rejects_degenerate_fabric(self):
        with pytest.raises(ConfigurationError):
            run_scale_point(brokers=1, entities=10, events=1)
