"""Fast smoke tests of the experiment runners (short durations).

The full paper-accuracy runs live in ``benchmarks/``; these tests check
the runners' mechanics — result structure, slopes, sample counts — at a
fraction of the simulated duration.
"""

import pytest

from repro.bench.experiments.entities import run_entities_case
from repro.bench.experiments.hops import (
    HopsResult,
    run_hops_case,
    run_signing_opt_sweep,
    slope_per_hop,
)
from repro.bench.experiments.keydist import run_keydist_case
from repro.bench.experiments.microcosts import (
    MICRO_ROWS,
    measure_real_primitives,
    run_calibrated_micro,
)
from repro.bench.experiments.trackers import growth_ratio, run_trackers_case
from repro.util.stats import summarize


class TestHopsRunner:
    def test_single_case_structure(self):
        result = run_hops_case(2, duration_ms=20_000.0)
        assert result.hops == 2
        assert result.transport == "TCP"
        assert result.summary.count >= 10
        assert 50.0 < result.summary.mean < 110.0

    def test_latency_grows_with_hops(self):
        short = run_hops_case(2, duration_ms=20_000.0)
        long = run_hops_case(5, duration_ms=20_000.0)
        assert long.summary.mean > short.summary.mean

    def test_slope_per_hop(self):
        results = [
            HopsResult(h, "TCP", False, False, summarize([10.0 * h, 10.0 * h]))
            for h in (2, 3, 4)
        ]
        assert slope_per_hop(results) == pytest.approx(10.0)

    def test_slope_requires_two_points(self):
        with pytest.raises(ValueError):
            slope_per_hop(
                [HopsResult(2, "TCP", False, False, summarize([1.0]))]
            )

    def test_signing_opt_sweep_shapes(self):
        results = run_signing_opt_sweep(hops_list=(2,), duration_ms=20_000.0)
        modes = {r.symmetric_channel for r in results}
        assert modes == {False, True}
        signed = next(r for r in results if not r.symmetric_channel)
        optimized = next(r for r in results if r.symmetric_channel)
        assert optimized.summary.mean < signed.summary.mean


class TestMicroRunner:
    def test_covers_all_table3_rows(self):
        results = run_calibrated_micro(samples=50)
        assert [r.label for r in results] == [label for label, _ in MICRO_ROWS]
        assert all(r.calibrated.count == 50 for r in results)

    def test_real_primitives_measured(self):
        timings = measure_real_primitives(iterations=3)
        assert set(timings) == {"rsa_sign", "rsa_verify", "aes_encrypt", "aes_decrypt"}
        assert all(s.mean > 0 for s in timings.values())


class TestTrackersRunner:
    def test_case_structure(self):
        result = run_trackers_case(10, duration_ms=20_000.0)
        assert result.tracker_count == 10
        assert result.summary.count > 5

    def test_growth_ratio(self):
        a = run_trackers_case(0, duration_ms=20_000.0)
        b = run_trackers_case(20, duration_ms=20_000.0)
        ratio = growth_ratio([a, b])
        assert 0.9 < ratio < 1.3


class TestEntitiesRunner:
    def test_case_structure(self):
        result = run_entities_case(3, tracker_count=3, duration_ms=15_000.0)
        assert result.entity_count == 3
        assert result.samples > 10


class TestKeydistRunner:
    def test_case_structure(self):
        result = run_keydist_case(2, tracker_count=5)
        assert result.hops == 2
        assert result.samples >= 3
        assert result.summary.mean > 40.0
