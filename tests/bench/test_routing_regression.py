"""Routing regression gate: live counters vs the committed seed snapshot.

``benchmarks/results/routing_seed.json`` records the routing counters of
the deterministic smoke scenario (quickstart + tracker detach).  Any code
change that makes routing wasteful (unroutable messages, forwards on
stale interest) or alters what gets delivered fails here.  To re-seed
after an *intentional* routing change::

    PYTHONPATH=src python -c "
    from repro.bench.routing_smoke import run_routing_smoke, render_snapshot
    open('benchmarks/results/routing_seed.json', 'w').write(
        render_snapshot(run_routing_smoke()))"
"""

import json
from pathlib import Path

import pytest

from repro.bench.routing_smoke import (
    compare_to_seed,
    render_snapshot,
    run_routing_smoke,
)

SEED_FILE = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "results"
    / "routing_seed.json"
)


@pytest.fixture(scope="module")
def live_snapshot():
    return run_routing_smoke()


@pytest.fixture(scope="module")
def seed_snapshot():
    return json.loads(SEED_FILE.read_text())


class TestAgainstCommittedSeed:
    def test_no_regressions(self, live_snapshot, seed_snapshot):
        findings = compare_to_seed(live_snapshot, seed_snapshot)
        assert not findings, "\n".join(findings)

    def test_snapshot_is_reproducible_exactly(self, live_snapshot, seed_snapshot):
        """Stronger than the gate: the whole snapshot is deterministic.

        If this fails after an intentional routing change, regenerate the
        seed file (see module docstring) and review the diff in the PR.
        """
        assert render_snapshot(live_snapshot) == render_snapshot(seed_snapshot)

    def test_scenario_sanity(self, live_snapshot):
        counters = live_snapshot["counters"]
        # the tracker really subscribed and later really detached
        assert counters["broker.interest.announced"] > 0
        assert counters["broker.interest.retracted"] > 0
        # a clean lifecycle leaves no waste
        assert counters["broker.msgs.unroutable"] == 0
        assert counters["broker.interest.stale_forwards"] == 0


class TestCompareToSeed:
    def test_flags_waste_counter_increase(self, seed_snapshot):
        bad = json.loads(render_snapshot(seed_snapshot))
        bad["counters"]["broker.interest.stale_forwards"] += 1
        findings = compare_to_seed(bad, seed_snapshot)
        assert any("stale_forwards" in f for f in findings)

    def test_flags_delivery_drift_either_direction(self, seed_snapshot):
        for delta in (-1, 1):
            bad = json.loads(render_snapshot(seed_snapshot))
            bad["counters"]["broker.msgs.delivered"] += delta
            assert compare_to_seed(bad, seed_snapshot)

    def test_flags_new_delivered_family_member(self, seed_snapshot):
        bad = json.loads(render_snapshot(seed_snapshot))
        bad["counters"]["broker.delivered.phantom"] = 3
        findings = compare_to_seed(bad, seed_snapshot)
        assert any("phantom" in f for f in findings)

    def test_clean_on_identical_snapshots(self, seed_snapshot):
        assert compare_to_seed(seed_snapshot, seed_snapshot) == []
