"""Chaos regression gate: live scenario vs the committed seed snapshot.

``benchmarks/results/chaos_seed.json`` records the full snapshot of the
``broker-crash`` chaos scenario (fault counts, recovery latency moments,
delivery totals).  Chaos runs are bit-identical per seed, so the gate
pins everything exactly — any drift is either nondeterminism creeping in
or a behaviour change that needs a deliberate re-seed.  To re-seed after
an *intentional* change::

    PYTHONPATH=src python -m repro faults --scenario broker-crash --json \
        > benchmarks/results/chaos_seed.json
"""

import json
from pathlib import Path

import pytest

from repro.faults import compare_to_seed, render_snapshot, run_scenario

SEED_FILE = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "results"
    / "chaos_seed.json"
)


@pytest.fixture(scope="module")
def live_snapshot():
    return run_scenario("broker-crash")


@pytest.fixture(scope="module")
def seed_snapshot():
    return json.loads(SEED_FILE.read_text())


class TestAgainstCommittedSeed:
    def test_no_regressions(self, live_snapshot, seed_snapshot):
        findings = compare_to_seed(live_snapshot, seed_snapshot)
        assert not findings, "\n".join(findings)

    def test_snapshot_is_reproducible_exactly(self, live_snapshot, seed_snapshot):
        """If this fails after an intentional change, re-seed (docstring)."""
        assert render_snapshot(live_snapshot) == render_snapshot(seed_snapshot)

    def test_scenario_sanity(self, live_snapshot):
        counters = live_snapshot["counters"]
        assert counters["faults.injected.broker_crash"] == 1
        # the crash was detected and the entity recovered
        assert counters["trace.recovery.detected"] == 1
        assert counters["trace.recovery.completed"] == 1
        assert live_snapshot["recovery"]["count"] == 1
        # fault window closed by end of run
        assert live_snapshot["faults_active_end"] == 0.0
        assert live_snapshot["journal"] == {"injected": 1, "reverted": 1}


class TestCompareToSeed:
    def test_flags_counter_drift_either_direction(self, seed_snapshot):
        for delta in (-1, 1):
            bad = json.loads(render_snapshot(seed_snapshot))
            bad["counters"]["broker.msgs.delivered"] += delta
            assert compare_to_seed(bad, seed_snapshot)

    def test_flags_recovery_drift(self, seed_snapshot):
        bad = json.loads(render_snapshot(seed_snapshot))
        bad["recovery"]["max_ms"] = bad["recovery"].get("max_ms", 0.0) + 1.0
        findings = compare_to_seed(bad, seed_snapshot)
        assert any("recovery" in f for f in findings)

    def test_flags_unreverted_fault(self, seed_snapshot):
        bad = json.loads(render_snapshot(seed_snapshot))
        bad["faults_active_end"] = 1.0
        findings = compare_to_seed(bad, seed_snapshot)
        assert any("faults_active_end" in f for f in findings)

    def test_flags_scenario_mismatch(self, seed_snapshot):
        bad = json.loads(render_snapshot(seed_snapshot))
        bad["scenario"] = "entity-churn"
        assert compare_to_seed(bad, seed_snapshot)

    def test_clean_on_identical_snapshots(self, seed_snapshot):
        assert compare_to_seed(seed_snapshot, seed_snapshot) == []
