"""Tests for the multi-seed replication harness."""

import pytest

from repro.bench.replication import ReplicatedResult, replicate, t_critical_95
from repro.util.stats import summarize


class TestTCritical:
    def test_table_values(self):
        assert t_critical_95(1) == pytest.approx(12.706)
        assert t_critical_95(9) == pytest.approx(2.262)

    def test_interpolation(self):
        value = t_critical_95(12)
        assert t_critical_95(15) < value < t_critical_95(10)

    def test_large_dof_goes_normal(self):
        assert t_critical_95(500) == pytest.approx(1.96)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            t_critical_95(0)


class TestReplicate:
    def test_deterministic_case_tight_ci(self):
        result = replicate("const", lambda seed: summarize([50.0, 50.0]), [1, 2, 3])
        assert result.mean_of_means == 50.0
        assert result.ci95_half_width == 0.0
        assert result.contains(50.0)
        assert not result.contains(51.0)

    def test_varying_case(self):
        def case(seed):
            return summarize([70.0 + seed, 70.0 + seed])

        result = replicate("vary", case, [0, 2, 4, 6])
        assert result.mean_of_means == pytest.approx(73.0)
        assert result.ci95_half_width > 0
        assert result.per_seed_means == (70.0, 72.0, 74.0, 76.0)

    def test_requires_two_seeds(self):
        with pytest.raises(ValueError):
            replicate("x", lambda seed: summarize([1.0]), [1])

    def test_describe(self):
        result = replicate("case", lambda s: summarize([10.0, 10.0]), [1, 2])
        assert "case" in result.describe()
        assert "95% CI" in result.describe()

    def test_real_experiment_seed_stability(self):
        """The 2-hop latency estimate is seed-stable: paper value inside
        the replication CI."""
        from repro.bench.experiments.hops import run_hops_case

        def case(seed):
            return run_hops_case(2, duration_ms=30_000.0, seed=seed).summary

        result = replicate("TCP auth 2 hops", case, [1, 2, 3, 4])
        assert result.contains(74.0) or abs(result.mean_of_means - 74.0) < 3.0
        # per-seed spread is small relative to the mean
        assert result.ci95_half_width < 5.0
