"""Contracts of the error taxonomy the ERR01 rule locks in."""

import pytest

from repro import errors


def test_every_public_error_is_a_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
            assert issubclass(obj, errors.ReproError), name


class TestBuiltinCompatibility:
    """Dual inheritance keeps pre-taxonomy ``except`` clauses working."""

    def test_validation_errors_are_value_errors(self):
        assert issubclass(errors.ValidationError, ValueError)
        assert issubclass(errors.ConfigurationError, ValueError)
        assert issubclass(errors.StatsError, ValueError)
        assert issubclass(errors.InstrumentError, ValueError)
        assert issubclass(errors.TopicError, ValueError)

    def test_serialization_split(self):
        assert issubclass(errors.SerializationDecodeError, ValueError)
        assert issubclass(errors.SerializationTypeError, TypeError)
        assert issubclass(errors.SerializationDecodeError, errors.SerializationError)
        assert issubclass(errors.SerializationTypeError, errors.SerializationError)

    def test_benchmark_errors_are_runtime_errors(self):
        assert issubclass(errors.BenchmarkError, RuntimeError)

    def test_series_lookup_is_a_key_error_with_plain_str(self):
        assert issubclass(errors.SeriesNotFoundError, KeyError)
        assert str(errors.SeriesNotFoundError("no series named 'x'")) == "no series named 'x'"


class TestKeyMaterialErrorRename:
    def test_deprecated_alias_is_the_same_class(self):
        assert errors.KeyError_ is errors.KeyMaterialError

    def test_key_material_error_is_crypto_and_value_error(self):
        assert issubclass(errors.KeyMaterialError, errors.CryptoError)
        assert issubclass(errors.KeyMaterialError, ValueError)

    def test_name_does_not_shadow_builtin(self):
        assert errors.KeyMaterialError.__name__ == "KeyMaterialError"
        assert not issubclass(errors.KeyMaterialError, KeyError)


class TestTaxonomyGapsFilled:
    def test_tdn_family(self):
        assert issubclass(errors.TdnError, errors.ReproError)
        assert issubclass(errors.DiscoveryError, errors.TdnError)

    def test_authorization_family(self):
        assert issubclass(errors.AuthorizationError, errors.ReproError)
        assert issubclass(errors.UnauthorizedError, errors.AuthorizationError)
        assert issubclass(errors.TokenError, errors.AuthorizationError)


class TestRaisedTypes:
    """Spot-check that call sites actually raise the taxonomy now."""

    def test_clock_validation(self):
        from repro.util.clock import VirtualClock

        clock = VirtualClock(start=100.0)
        with pytest.raises(errors.ValidationError):
            clock.advance_to(50.0)

    def test_stats_empty(self):
        from repro.util.stats import RunningStats

        with pytest.raises(errors.StatsError):
            RunningStats().summary()

    def test_serialization_decode(self):
        from repro.util.serialization import canonical_decode

        with pytest.raises(errors.SerializationDecodeError):
            canonical_decode(b"\xff\xff")

    def test_serialization_encode_type(self):
        from repro.util.serialization import canonical_encode

        with pytest.raises(errors.SerializationTypeError):
            canonical_encode(object())

    def test_monitor_series_lookup(self):
        from repro.sim.monitor import Monitor

        with pytest.raises(errors.SeriesNotFoundError):
            Monitor().summary("ghost")

    def test_aes_key_material(self):
        from repro.crypto.aes import AESKey

        with pytest.raises(errors.KeyMaterialError):
            AESKey(b"short")

    def test_deployment_topology(self):
        from repro.deployment import build_deployment

        with pytest.raises(errors.ConfigurationError):
            build_deployment(broker_ids=["a", "b"], topology="moebius")
