"""Tests for the real-time playback driver."""

import asyncio
import time

import pytest

from repro.errors import ConfigurationError
from repro.runtime.realtime import RealTimeDriver
from repro.sim.engine import Simulator


class TestRealTimeDriver:
    def test_rejects_bad_speed(self):
        with pytest.raises(ConfigurationError):
            RealTimeDriver(Simulator(), speed=0.0)

    def test_preserves_event_order_and_virtual_time(self):
        sim = Simulator()
        order = []
        sim.call_later(30.0, lambda: order.append(("a", sim.now)))
        sim.call_later(10.0, lambda: order.append(("b", sim.now)))
        driver = RealTimeDriver(sim, speed=1_000.0)
        driver.run()
        assert order == [("b", 10.0), ("a", 30.0)]

    def test_wall_time_roughly_matches_scaled_virtual(self):
        sim = Simulator()
        for i in range(1, 6):
            sim.call_later(float(i) * 100.0, lambda: None)
        driver = RealTimeDriver(sim, speed=10.0)  # 500 virtual ms -> ~50 real
        start = time.monotonic()
        driver.run()
        elapsed_ms = (time.monotonic() - start) * 1000.0
        assert 30.0 <= elapsed_ms <= 500.0
        assert sim.now == 500.0

    def test_run_until_advances_clock(self):
        sim = Simulator()
        sim.call_later(5.0, lambda: None)
        driver = RealTimeDriver(sim, speed=10_000.0)
        driver.run(until=100.0)
        assert sim.now == 100.0

    def test_on_tick_callback(self):
        sim = Simulator()
        sim.call_later(1.0, lambda: None)
        sim.call_later(2.0, lambda: None)
        ticks = []
        driver = RealTimeDriver(sim, speed=10_000.0)
        driver.on_tick = ticks.append
        driver.run()
        assert ticks == [1.0, 2.0]

    def test_async_playback(self):
        sim = Simulator()
        order = []
        sim.call_later(20.0, lambda: order.append(sim.now))
        sim.call_later(40.0, lambda: order.append(sim.now))
        driver = RealTimeDriver(sim, speed=1_000.0)

        async def main():
            side = []

            async def side_task():
                side.append("ran")

            task = asyncio.ensure_future(side_task())
            await driver.run_async()
            await task
            return side

        side = asyncio.run(main())
        assert order == [20.0, 40.0]
        assert side == ["ran"]  # cooperative: other tasks got CPU time

    def test_lag_reporting(self):
        sim = Simulator()
        driver = RealTimeDriver(sim, speed=1.0)
        assert driver.lag_ms == 0.0
