"""Campaign execution, snapshot assembly, and the seed-gate mirror."""

import copy
import json
import pathlib

import pytest

from repro.campaigns import (
    Axis,
    CampaignSpec,
    campaign_snapshot,
    compare_to_snapshot,
    expand,
    load_spec,
    render_snapshot,
    run_campaign,
    run_point,
)
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SMOKE_SPEC = REPO_ROOT / "benchmarks" / "campaigns" / "smoke.json"
SMOKE_SEED = (
    REPO_ROOT / "benchmarks" / "results" / "campaigns" / "smoke" / "snapshot.json"
)

#: A two-point campaign cheap enough to execute in-process.
TINY = CampaignSpec(
    name="tiny",
    workloads=("baseline-allpairs",),
    baselines=("baseline-gossip",),
    axes=(),
    fixed={"duration_ms": 20_000.0},
    base_seed=5,
)


class TestRunPoint:
    def test_record_carries_the_point_identity(self):
        point = expand(TINY)[0]
        record = run_point(point)
        assert record["index"] == point.index
        assert record["family"] == "baseline-allpairs"
        assert record["kind"] == "workload"
        assert record["params"] == point.params
        assert record["seed"] == 5
        assert record["repetition"] == 0
        assert record["metrics"]["population"] >= 3


class TestRunCampaign:
    def test_snapshot_shape_and_instruments(self):
        registry = MetricsRegistry()
        lines = []
        snapshot = run_campaign(TINY, registry=registry, progress=lines.append)
        assert snapshot["campaign"] == "tiny"
        assert snapshot["seed"] == 5
        assert snapshot["point_count"] == 2
        assert snapshot["spec"] == TINY.to_dict()
        assert snapshot["families"] == {
            "baseline-allpairs": {"kind": "workload", "points": 1},
            "baseline-gossip": {"kind": "baseline", "points": 1},
        }
        metrics = registry.snapshot()
        assert metrics["gauges"]["campaign.points.total"] == 2
        assert metrics["counters"]["campaign.points.completed"] == 2
        assert "campaign.points.failed" not in metrics["counters"]
        assert len(lines) == 2 and lines[0].startswith("[1/2]")

    def test_seed_override_reaches_every_point(self):
        snapshot = run_campaign(TINY, seed=99)
        assert snapshot["seed"] == 99
        assert all(r["seed"] == 99 for r in snapshot["results"])

    def test_parallel_needs_the_spec_path(self):
        with pytest.raises(ConfigurationError):
            run_campaign(TINY, parallel=2)
        with pytest.raises(ConfigurationError):
            run_campaign(TINY, parallel=0)

    def test_render_snapshot_is_canonical(self):
        snapshot = run_campaign(TINY)
        text = render_snapshot(snapshot)
        assert text.endswith("\n")
        assert json.loads(text) == snapshot
        assert text == render_snapshot(json.loads(text))  # stable re-render


class TestCompare:
    def test_identical_snapshots_have_no_findings(self):
        seed = json.loads(SMOKE_SEED.read_text())
        assert compare_to_snapshot(copy.deepcopy(seed), seed) == []

    def test_drift_is_reported_per_point(self):
        seed = json.loads(SMOKE_SEED.read_text())
        live = copy.deepcopy(seed)
        live["results"][0]["metrics"]["counters"]["tracker.pings.sent"] += 1
        live["seed"] = 43
        findings = compare_to_snapshot(live, seed)
        assert any("seed" in f for f in findings)
        assert any("point 0" in f for f in findings)

    def test_missing_points_are_reported(self):
        seed = json.loads(SMOKE_SEED.read_text())
        live = copy.deepcopy(seed)
        live["results"] = live["results"][:-1]
        assert any("point" in f for f in compare_to_snapshot(live, seed))


class TestSmokeSeedMirror:
    """Tier-1 mirror of CI's campaign-smoke job: the committed snapshot
    must be exactly reproducible from the committed spec at seed 42."""

    def test_smoke_campaign_reproduces_committed_snapshot(self):
        spec = load_spec(SMOKE_SPEC)
        live = run_campaign(spec, seed=42)
        assert render_snapshot(live) == SMOKE_SEED.read_text()

    def test_committed_snapshot_satisfies_the_issue_contract(self):
        seed = json.loads(SMOKE_SEED.read_text())
        kinds = {f["kind"] for f in seed["families"].values()}
        assert "baseline" in kinds  # a baseline comparison is present
        adversarial = [
            r for r in seed["results"] if "attack" in r.get("metrics", {})
        ]
        assert adversarial  # at least one §5 adversarial family
