"""The report generator: purity, tables, figures, footnotes."""

import json
import pathlib

import pytest

from repro.campaigns import generate_report

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SMOKE_DIR = REPO_ROOT / "benchmarks" / "results" / "campaigns" / "smoke"


@pytest.fixture(scope="module")
def snapshot() -> dict:
    return json.loads((SMOKE_DIR / "snapshot.json").read_text())


@pytest.fixture(scope="module")
def regenerated(snapshot, tmp_path_factory) -> pathlib.Path:
    out_dir = tmp_path_factory.mktemp("report")
    generate_report(snapshot, out_dir)
    return out_dir


class TestPurity:
    """CI regenerates the committed report and requires a clean diff;
    this is the tier-1 mirror of that contract."""

    def test_report_is_a_pure_function_of_the_snapshot(self, regenerated):
        for name in ("report.md", "fig_availability.svg", "fig_baselines.svg"):
            assert (regenerated / name).read_text() == (
                SMOKE_DIR / name
            ).read_text(), f"{name} drifted from the committed artifact"


class TestContent:
    def test_every_family_gets_a_table(self, snapshot, regenerated):
        report = (regenerated / "report.md").read_text()
        for family in snapshot["families"]:
            assert f"## {family}" in report

    def test_adversarial_table_shows_the_defense_columns(self, regenerated):
        report = (regenerated / "report.md").read_text()
        assert "violations" in report
        assert "terminated" in report

    def test_baseline_comparison_grid_present(self, regenerated):
        report = (regenerated / "report.md").read_text()
        assert "## Baseline comparison" in report
        assert "baseline-gossip" in report

    def test_dependability_summary_present(self, regenerated):
        report = (regenerated / "report.md").read_text()
        assert "## Dependability summary" in report
        assert "MTTR" in report

    def test_projected_axes_are_footnoted(self, regenerated):
        report = (regenerated / "report.md").read_text()
        assert "projected away" in report
        assert "`churn_cycles`" in report

    def test_regeneration_footer_names_the_command(self, regenerated):
        report = (regenerated / "report.md").read_text()
        assert "repro campaign run" in report
        assert "benchmarks/campaigns/smoke.json" in report
