"""CampaignSpec validation, round-trip, and matrix expansion."""

import pytest

from repro.campaigns import (
    Axis,
    CampaignSpec,
    expand,
    ignored_axes,
    load_spec,
    unused_parameters,
)
from repro.errors import ConfigurationError, ValidationError


def _spec(**overrides) -> CampaignSpec:
    fields = dict(
        name="t",
        workloads=("churn-mobile",),
        baselines=("baseline-gossip",),
        axes=(Axis("entities", (2, 3)), Axis("churn_cycles", (1, 2))),
        fixed={"brokers": 3},
        repetitions=1,
        base_seed=42,
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


class TestValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            _spec(name="")

    def test_at_least_one_workload_required(self):
        with pytest.raises(ConfigurationError):
            _spec(workloads=())  # baselines alone are not a campaign

    def test_zero_repetitions_rejected(self):
        with pytest.raises(ValidationError):
            _spec(repetitions=0)

    def test_axis_needs_values(self):
        with pytest.raises(ValidationError):
            _spec(axes=(Axis("entities", ()),))

    def test_axis_and_fixed_collision_rejected(self):
        with pytest.raises(ValidationError):
            _spec(fixed={"entities": 5})

    def test_grid_size_is_the_per_family_cell_count(self):
        assert _spec().grid_size() == 2 * 2
        assert _spec(repetitions=2).grid_size() == 2 * 2  # repetitions excluded


class TestRoundTrip:
    def test_to_from_dict_is_identity(self):
        spec = _spec(repetitions=3, base_seed=7)
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(ValidationError):
            CampaignSpec.from_dict({"workloads": ["churn-mobile"]})

    def test_load_spec_smoke_file(self):
        spec = load_spec("benchmarks/campaigns/smoke.json")
        assert spec.name == "smoke"
        assert spec.grid_size() >= 4

    def test_load_spec_missing_file(self):
        with pytest.raises(ConfigurationError):
            load_spec("benchmarks/campaigns/no-such-spec.json")

    def test_load_spec_invalid_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValidationError):
            load_spec(bad)


class TestExpansion:
    def test_workloads_precede_baselines_with_stable_indexes(self):
        points = expand(_spec())
        assert [p.index for p in points] == list(range(len(points)))
        kinds = [p.kind for p in points]
        assert kinds == sorted(kinds, key=("workload", "baseline").index)

    def test_full_grid_for_accepting_family(self):
        churn = [p for p in expand(_spec()) if p.family == "churn-mobile"]
        cells = {(p.params["entities"], p.params["churn_cycles"]) for p in churn}
        assert cells == {(2, 1), (2, 2), (3, 1), (3, 2)}
        assert all(p.params["brokers"] == 3 for p in churn)

    def test_projection_deduplicates_baseline_cells(self):
        gossip = [p for p in expand(_spec()) if p.family == "baseline-gossip"]
        # gossip ignores churn_cycles (and fixed brokers): 2x2 grid -> 2 points
        assert sorted(p.params["entities"] for p in gossip) == [2, 3]
        assert all("churn_cycles" not in p.params for p in gossip)
        assert all("brokers" not in p.params for p in gossip)

    def test_repetitions_step_the_seed(self):
        points = expand(_spec(axes=(), repetitions=3), seed=100)
        churn = [p for p in points if p.family == "churn-mobile"]
        assert [(p.repetition, p.seed) for p in churn] == [
            (0, 100), (1, 101), (2, 102),
        ]

    def test_seed_argument_overrides_base_seed(self):
        assert expand(_spec(), seed=7)[0].seed == 7
        assert expand(_spec())[0].seed == 42

    def test_unknown_family_raises_with_known_names(self):
        with pytest.raises(ConfigurationError) as excinfo:
            expand(_spec(workloads=("no-such-family",)))
        assert "no-such-family" in str(excinfo.value)
        assert "churn-mobile" in str(excinfo.value)

    def test_label_is_stable(self):
        point = expand(_spec())[0]
        assert point.family in point.label()
        assert f"seed={point.seed}" in point.label()


class TestLints:
    def test_ignored_axes_for_baseline(self):
        assert ignored_axes(_spec(), "baseline-gossip") == ("churn_cycles",)
        assert ignored_axes(_spec(), "churn-mobile") == ()

    def test_unused_parameters_flags_universal_typos(self):
        spec = _spec(axes=(Axis("entites", (2, 3)),))  # typo: no family accepts
        assert unused_parameters(spec) == ("entites",)
        assert unused_parameters(_spec()) == ()
