"""The workload-family registry: contracts, determinism, §5 defenses."""

import pytest

from repro.campaigns import WORKLOADS, workload_family
from repro.errors import ConfigurationError

#: Cheap parameterizations, one per family, for determinism checks.
_CHEAP = {
    "churn-mobile": {"duration_ms": 40_000.0, "churn_period_ms": 15_000.0},
    "unauthorized-publisher": {"duration_ms": 30_000.0, "flood": 4},
    "token-replay-flood": {"duration_ms": 30_000.0, "flood": 4},
    "malicious-termination": {"duration_ms": 45_000.0, "flood": 4},
    "baseline-gossip": {"duration_ms": 20_000.0},
    "baseline-allpairs": {"duration_ms": 20_000.0},
}


class TestRegistry:
    def test_lookup_unknown_name_lists_known_families(self):
        with pytest.raises(ConfigurationError) as excinfo:
            workload_family("meteor-strike")
        message = str(excinfo.value)
        assert "meteor-strike" in message
        for name in WORKLOADS:
            assert name in message

    def test_families_declare_valid_metadata(self):
        assert set(WORKLOADS) == {
            "churn-mobile",
            "unauthorized-publisher",
            "token-replay-flood",
            "malicious-termination",
            "baseline-gossip",
            "baseline-allpairs",
        }
        for family in WORKLOADS.values():
            assert family.kind in {"protocol", "adversarial", "baseline"}
            assert family.description
            assert set(family.defaults) <= family.accepts, family.name

    def test_resolve_overlays_defaults_and_rejects_unknowns(self):
        family = workload_family("churn-mobile")
        resolved = family.resolve({"entities": 5})
        assert resolved["entities"] == 5
        assert resolved["brokers"] == family.defaults["brokers"]
        with pytest.raises(ConfigurationError) as excinfo:
            family.resolve({"fanout": 3})
        assert "fanout" in str(excinfo.value)


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(_CHEAP))
    def test_two_runs_are_bit_identical(self, name):
        family = workload_family(name)
        params = _CHEAP[name]
        assert family.run(dict(params), seed=11) == family.run(
            dict(params), seed=11
        )


class TestAdversarialDefenses:
    """The §5.2 stories the campaign snapshots are built to evidence."""

    def test_unauthorized_publisher_is_terminated_silently(self):
        metrics = workload_family("unauthorized-publisher").run(
            dict(_CHEAP["unauthorized-publisher"]), seed=3
        )
        assert metrics["attack"]["attempts"] > 0
        # three strikes: the broker discards, counts, and terminates
        assert metrics["defense"]["violations"] == 3
        assert metrics["defense"]["terminated"] >= 1
        assert metrics["defense"]["attacker_blacklisted"] is True
        # the tracker never believes a forged FAILED verdict
        assert metrics["forged_failed_seen"] == 0
        assert metrics["alls_well_received"] > 0

    def test_token_replay_is_rejected_before_any_crypto(self):
        metrics = workload_family("token-replay-flood").run(
            dict(_CHEAP["token-replay-flood"]), seed=3
        )
        attack, defense = metrics["attack"], metrics["defense"]
        assert attack["captured"] > 0
        assert attack["replays"] > 0
        # §4.1 constrained topics: replays die before token verification
        assert attack["token_verifies_during_flood"] == 0
        assert defense["rejected_constrained"] > 0
        assert defense["terminated"] >= 1

    def test_malicious_termination_does_not_block_real_recovery(self):
        metrics = workload_family("malicious-termination").run(
            dict(_CHEAP["malicious-termination"]), seed=3
        )
        assert metrics["defense"]["violations"] == 3
        assert metrics["defense"]["terminated"] >= 1
        # the genuine churn cycle still detects and recovers
        assert metrics["recovery"]["count"] >= 1
