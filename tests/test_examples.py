"""Smoke tests: every example script runs to completion and prints what
its docstring promises.  Keeps the examples from rotting as the library
evolves."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES / name
    assert path.exists(), f"missing example {name}"
    argv = sys.argv
    try:
        sys.argv = [str(path)]
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "entity registered" in out
        assert "ALLS_WELL" in out
        assert "mean end-to-end trace latency" in out

    def test_grid_service_monitor(self, capsys):
        out = run_example("grid_service_monitor.py", capsys)
        assert "final=FAILED" in out
        assert "final=SHUTDOWN" in out
        assert "final=READY" in out
        assert "failure declared" in out

    def test_secure_fleet(self, capsys):
        out = run_example("secure_fleet.py", capsys)
        assert "trace key received = True" in out
        assert "TDN ignored the discovery request" in out
        assert "0 readable without the trace key" in out
        assert "terminated = True" in out

    def test_baseline_comparison(self, capsys):
        out = run_example("baseline_comparison.py", capsys)
        assert "all-pairs msgs/s" in out
        assert "gossip" in out

    def test_availability_analytics(self, capsys):
        out = run_example("availability_analytics.py", capsys)
        assert "uptime %" in out
        assert "2 outages" in out
        assert "expected RTT" in out
        assert "persistent store:" in out
        assert "availability report" in out
        assert "session.created" in out  # journal evidence reached the store

    def test_chaos_recovery(self, capsys):
        out = run_example("chaos_recovery.py", capsys)
        assert "fault.injected" in out
        assert "recovery.completed" in out
        assert "failures detected: 1, recoveries completed: 1" in out
        assert "detection -> re-registration latency" in out
        assert "after the crash" in out

    def test_perf_diff(self, capsys):
        out = run_example("perf_diff.py", capsys)
        assert "token verification cost" in out
        assert "% less" in out
        assert "before/after diff table:" in out
        assert "crypto.ms.token_verify" in out
        assert "auth.token.cache.hit" in out

    def test_live_dashboard(self, capsys):
        # patch the playback speed before execution so the test stays quick
        path = EXAMPLES / "live_dashboard.py"
        source = path.read_text().replace("SPEED = 20.0", "SPEED = 2000.0")
        namespace = {"__name__": "__main__", "__file__": str(path)}
        exec(compile(source, str(path), "exec"), namespace)
        out = capsys.readouterr().out
        assert "failure declared: True" in out
