"""Tests for authorization tokens (section 4.3)."""

import pytest

from repro.auth.tokens import AuthorizationToken, TokenRights
from repro.crypto.signing import SignedEnvelope, sign_payload
from repro.errors import TokenError
from repro.tdn.advertisement import TopicAdvertisement, TopicLifetime
from repro.tdn.query import DiscoveryRestrictions, trace_descriptor
from repro.util.identifiers import UUID128


@pytest.fixture
def advertisement(keypair, second_keypair):
    """An advertisement owned by `keypair`, 'signed' by a TDN stand-in."""
    fields = {
        "trace_topic": UUID128(77).hex,
        "descriptor": trace_descriptor("svc"),
        "owner_subject": "svc",
        "owner_n": keypair.public.n,
        "owner_e": keypair.public.e,
        "restrictions": DiscoveryRestrictions.open_to_authenticated().to_dict(),
        "lifetime": TopicLifetime(0.0, 1e9).to_dict(),
        "issuing_tdn": "tdn-0",
    }
    signature = sign_payload(fields, second_keypair.private)  # TDN key
    return TopicAdvertisement(
        trace_topic=UUID128(77),
        descriptor=trace_descriptor("svc"),
        owner_subject="svc",
        owner_public_key=keypair.public,
        restrictions=DiscoveryRestrictions.open_to_authenticated(),
        lifetime=TopicLifetime(0.0, 1e9),
        issuing_tdn="tdn-0",
        signature=signature,
    )


class TestCreation:
    def test_create_returns_token_and_private_key(self, advertisement, keypair, rng):
        token, private = AuthorizationToken.create(
            advertisement, keypair.private, TokenRights.PUBLISH, 100.0, 500.0, rng
        )
        assert token.rights is TokenRights.PUBLISH
        assert token.valid_from_ms == 100.0
        assert token.valid_until_ms == 600.0
        assert private.public.n == token.token_public_key.n
        token.verify_owner_signature()

    def test_token_keypair_is_random(self, advertisement, keypair, rng):
        """Random key pairs hide the broker's identity (section 4.3)."""
        token_a, _ = AuthorizationToken.create(
            advertisement, keypair.private, TokenRights.PUBLISH, 0, 100, rng
        )
        token_b, _ = AuthorizationToken.create(
            advertisement, keypair.private, TokenRights.PUBLISH, 0, 100, rng
        )
        assert token_a.token_public_key != token_b.token_public_key
        assert token_a.token_public_key != keypair.public


class TestValidity:
    def test_expiry_with_skew_tolerance(self, advertisement, keypair, rng):
        token, _ = AuthorizationToken.create(
            advertisement, keypair.private, TokenRights.PUBLISH, 0.0, 1000.0, rng
        )
        assert not token.expired(1000.0)
        # within the paper's NTP skew band (30-100 ms) still accepted
        assert not token.expired(1099.0, skew_tolerance_ms=100.0)
        assert token.expired(1101.0, skew_tolerance_ms=100.0)

    def test_not_yet_valid(self, advertisement, keypair, rng):
        token, _ = AuthorizationToken.create(
            advertisement, keypair.private, TokenRights.PUBLISH, 500.0, 1000.0, rng
        )
        assert token.not_yet_valid(300.0)
        assert not token.not_yet_valid(450.0, skew_tolerance_ms=100.0)
        assert not token.not_yet_valid(600.0)


class TestForgery:
    def test_forged_owner_signature_rejected(
        self, advertisement, keypair, second_keypair, rng
    ):
        """A token signed by someone other than the topic owner fails."""
        token, _ = AuthorizationToken.create(
            advertisement, second_keypair.private, TokenRights.PUBLISH, 0, 100, rng
        )
        with pytest.raises(TokenError):
            token.verify_owner_signature()

    def test_mutated_fields_rejected(self, advertisement, keypair, rng):
        token, _ = AuthorizationToken.create(
            advertisement, keypair.private, TokenRights.PUBLISH, 0.0, 100.0, rng
        )
        stretched = AuthorizationToken(
            advertisement=token.advertisement,
            token_public_key=token.token_public_key,
            rights=token.rights,
            valid_from_ms=token.valid_from_ms,
            valid_until_ms=token.valid_until_ms + 1_000_000,  # stretch validity
            owner_signature=token.owner_signature,
        )
        with pytest.raises(TokenError):
            stretched.verify_owner_signature()


class TestWireForm:
    def test_dict_roundtrip(self, advertisement, keypair, rng):
        token, _ = AuthorizationToken.create(
            advertisement, keypair.private, TokenRights.PUBLISH, 0.0, 100.0, rng
        )
        restored = AuthorizationToken.from_dict(token.to_dict())
        assert restored.trace_topic == token.trace_topic
        assert restored.token_public_key == token.token_public_key
        restored.verify_owner_signature()

    def test_malformed_dict_rejected(self):
        with pytest.raises(TokenError):
            AuthorizationToken.from_dict({"nope": 1})

    def test_bad_rights_rejected(self, advertisement, keypair, rng):
        token, _ = AuthorizationToken.create(
            advertisement, keypair.private, TokenRights.PUBLISH, 0.0, 100.0, rng
        )
        data = token.to_dict()
        data["rights"] = "world-domination"
        with pytest.raises(TokenError):
            AuthorizationToken.from_dict(data)
