"""Tests for the token verification cache (repro.auth.cache).

Unit coverage first — LRU behaviour, validity-window checks, the
hit/miss/evicted counters — then the integration properties ISSUE 5
demands: a cached token is *re*-verified once its validity window closes,
a revoked token stops working even while cached, and a restarted broker
starts with a cold cache.
"""

import pytest

from repro.auth import (
    AuthorizationToken,
    TokenRights,
    TokenVerificationCache,
    TokenVerifier,
    token_digest,
)
from repro.errors import ConfigurationError, TokenError
from repro.obs import MetricsRegistry

from tests.auth.test_verification import make_advertisement


def make_token(keypair, second_keypair, rng, valid_until_ms=10_000.0, topic_value=5):
    ad = make_advertisement(keypair, second_keypair, topic_value=topic_value)
    token, _ = AuthorizationToken.create(
        ad, keypair.private, TokenRights.PUBLISH, 0.0, valid_until_ms, rng
    )
    return token


@pytest.fixture
def token(keypair, second_keypair, rng):
    return make_token(keypair, second_keypair, rng)


class TestCacheUnit:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            TokenVerificationCache(capacity=0)

    def test_store_then_lookup_hits(self, token):
        cache = TokenVerificationCache()
        digest = token_digest(token.to_dict())
        assert cache.lookup(digest, now_ms=0.0) is None
        cache.store(digest, token)
        assert cache.lookup(digest, now_ms=100.0) is token
        assert digest in cache and len(cache) == 1

    def test_expired_entry_is_a_miss_and_is_dropped(self, token):
        cache = TokenVerificationCache()
        digest = token_digest(token.to_dict())
        cache.store(digest, token)
        assert cache.lookup(digest, now_ms=10_500.0) is None
        assert digest not in cache

    def test_skew_tolerance_keeps_borderline_entries_alive(self, token):
        cache = TokenVerificationCache()
        digest = token_digest(token.to_dict())
        cache.store(digest, token)
        assert cache.lookup(digest, 10_050.0, skew_tolerance_ms=100.0) is token

    def test_lru_eviction_order(self, keypair, second_keypair, rng):
        cache = TokenVerificationCache(capacity=2)
        tokens = [
            make_token(keypair, second_keypair, rng, topic_value=i) for i in (1, 2, 3)
        ]
        digests = [token_digest(t.to_dict()) for t in tokens]
        cache.store(digests[0], tokens[0])
        cache.store(digests[1], tokens[1])
        # touch the oldest so the *other* entry becomes LRU
        assert cache.lookup(digests[0], now_ms=0.0) is tokens[0]
        cache.store(digests[2], tokens[2])
        assert digests[0] in cache and digests[2] in cache
        assert digests[1] not in cache

    def test_counters_recorded(self, token):
        metrics = MetricsRegistry()
        cache = TokenVerificationCache(capacity=1, metrics=metrics)
        digest = token_digest(token.to_dict())
        counters = metrics.snapshot()["counters"]
        assert counters["auth.token.cache.hit"] == 0  # materialized zeros
        cache.lookup(digest, now_ms=0.0)  # miss
        cache.store(digest, token)
        cache.lookup(digest, now_ms=0.0)  # hit
        cache.store(b"other-digest-0000000", token)  # evicts
        counters = metrics.snapshot()["counters"]
        assert counters["auth.token.cache.miss"] == 1
        assert counters["auth.token.cache.hit"] == 1
        assert counters["auth.token.cache.evicted"] == 1

    def test_clear_and_discard(self, token):
        cache = TokenVerificationCache()
        digest = token_digest(token.to_dict())
        cache.store(digest, token)
        cache.discard(digest)
        assert len(cache) == 0
        cache.discard(digest)  # absent: no-op
        cache.store(digest, token)
        cache.clear()
        assert digest not in cache


class TestVerifierIntegration:
    def test_revoked_token_rejected_even_while_cached(
        self, second_keypair, token
    ):
        cache = TokenVerificationCache()
        verifier = TokenVerifier({"tdn-0": second_keypair.public}, cache=cache)
        token_dict = token.to_dict()
        digest = token_digest(token_dict)
        cache.store(digest, verifier.verify(token_dict, now_ms=0.0))
        verifier.revoke(token_dict)
        assert verifier.is_revoked(token_dict)
        assert digest not in cache  # revocation purges the cache entry
        with pytest.raises(TokenError):
            verifier.verify(token_dict, now_ms=1.0)

    def test_expiry_forces_reverification(self, second_keypair, token):
        cache = TokenVerificationCache()
        verifier = TokenVerifier({"tdn-0": second_keypair.public}, cache=cache)
        token_dict = token.to_dict()
        digest = token_digest(token_dict)
        cache.store(digest, verifier.verify(token_dict, now_ms=0.0))
        # inside the window the cache answers; past it the entry is purged
        assert cache.lookup(digest, 9_000.0, verifier.skew_tolerance_ms) is not None
        assert cache.lookup(digest, 10_200.0, verifier.skew_tolerance_ms) is None
        assert digest not in cache


class TestDeploymentIntegration:
    def test_restarted_broker_starts_cold(self):
        from repro import build_deployment

        dep = build_deployment(broker_ids=["b1", "b2"], seed=7)
        entity = dep.add_traced_entity("svc")
        tracker = dep.add_tracker("w")
        tracker.connect("b2")
        entity.start("b1")
        dep.sim.run(until=3_000)
        tracker.track("svc")
        dep.sim.run(until=20_000)

        cache = dep.broker_verifiers["b1"].cache
        assert cache is not None and len(cache) > 0
        dep.network.fail_broker("b1")
        dep.restart_broker("b1", neighbors=["b2"])
        assert len(cache) == 0

    def test_every_broker_gets_its_own_verifier(self):
        from repro import build_deployment

        dep = build_deployment(broker_ids=["b1", "b2"], seed=7)
        verifiers = {id(v) for v in dep.broker_verifiers.values()}
        assert len(verifiers) == len(dep.broker_verifiers) == 2
        caches = {id(v.cache) for v in dep.broker_verifiers.values()}
        assert len(caches) == 2
