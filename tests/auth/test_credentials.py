"""Tests for entity credentials."""

import pytest

from repro.auth.credentials import EntityCredentials
from repro.errors import SignatureError


class TestEntityCredentials:
    def test_issue_binds_subject(self, ca, rng):
        creds = EntityCredentials.issue("svc-1", ca, rng)
        assert creds.subject == "svc-1"
        assert creds.certificate.subject == "svc-1"
        ca.verify(creds.certificate, now_ms=0.0)

    def test_sign_and_verify_own(self, ca, rng):
        creds = EntityCredentials.issue("svc-1", ca, rng)
        envelope = creds.sign({"hello": 1})
        assert creds.verify_own(envelope) == {"hello": 1}

    def test_signature_not_transferable(self, ca, rng):
        alice = EntityCredentials.issue("alice", ca, rng)
        bob = EntityCredentials.issue("bob", ca, rng)
        envelope = alice.sign({"x": 1})
        with pytest.raises(SignatureError):
            bob.verify_own(envelope)

    def test_public_key_matches_certificate(self, ca, rng):
        creds = EntityCredentials.issue("svc", ca, rng)
        assert creds.public_key == creds.certificate.public_key

    def test_validity_window_propagates(self, ca, rng):
        creds = EntityCredentials.issue("svc", ca, rng, not_after_ms=100.0)
        assert creds.certificate.not_after_ms == 100.0
