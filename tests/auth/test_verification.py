"""Tests for broker-side token verification and the trace guard."""

import pytest

from repro.auth.tokens import AuthorizationToken, TokenRights
from repro.auth.verification import TokenVerifier, TraceAuthorizationGuard
from repro.crypto.signing import sign_payload
from repro.errors import TokenError
from repro.messaging.message import Message
from repro.messaging.topics import Topic
from repro.tdn.advertisement import TopicAdvertisement, TopicLifetime
from repro.tdn.query import DiscoveryRestrictions, trace_descriptor
from repro.util.identifiers import UUID128


def make_advertisement(owner_pair, tdn_pair, tdn_name="tdn-0", topic_value=5):
    fields = {
        "trace_topic": UUID128(topic_value).hex,
        "descriptor": trace_descriptor("svc"),
        "owner_subject": "svc",
        "owner_n": owner_pair.public.n,
        "owner_e": owner_pair.public.e,
        "restrictions": DiscoveryRestrictions.open_to_authenticated().to_dict(),
        "lifetime": TopicLifetime(0.0, 1e9).to_dict(),
        "issuing_tdn": tdn_name,
    }
    return TopicAdvertisement(
        trace_topic=UUID128(topic_value),
        descriptor=trace_descriptor("svc"),
        owner_subject="svc",
        owner_public_key=owner_pair.public,
        restrictions=DiscoveryRestrictions.open_to_authenticated(),
        lifetime=TopicLifetime(0.0, 1e9),
        issuing_tdn=tdn_name,
        signature=sign_payload(fields, tdn_pair.private),
    )


@pytest.fixture
def verifier(second_keypair):
    return TokenVerifier({"tdn-0": second_keypair.public})


@pytest.fixture
def valid_token_dict(keypair, second_keypair, rng):
    ad = make_advertisement(keypair, second_keypair)
    token, _ = AuthorizationToken.create(
        ad, keypair.private, TokenRights.PUBLISH, 0.0, 10_000.0, rng
    )
    return token.to_dict()


class TestTokenVerifier:
    def test_valid_token_passes(self, verifier, valid_token_dict):
        token = verifier.verify(valid_token_dict, now_ms=100.0)
        assert token.rights is TokenRights.PUBLISH

    def test_expired_rejected(self, verifier, valid_token_dict):
        with pytest.raises(TokenError):
            verifier.verify(valid_token_dict, now_ms=10_200.0)

    def test_skew_tolerance_applied(self, verifier, valid_token_dict):
        verifier.verify(valid_token_dict, now_ms=10_099.0)  # inside tolerance

    def test_untrusted_tdn_rejected(self, keypair, second_keypair, rng):
        verifier = TokenVerifier({})  # trusts no TDN
        ad = make_advertisement(keypair, second_keypair)
        token, _ = AuthorizationToken.create(
            ad, keypair.private, TokenRights.PUBLISH, 0.0, 10_000.0, rng
        )
        with pytest.raises(TokenError):
            verifier.verify(token.to_dict(), now_ms=0.0)

    def test_forged_advertisement_rejected(self, keypair, second_keypair, rng):
        # advertisement signed by the owner, not the TDN
        ad = make_advertisement(keypair, keypair)
        verifier = TokenVerifier({"tdn-0": second_keypair.public})
        token, _ = AuthorizationToken.create(
            ad, keypair.private, TokenRights.PUBLISH, 0.0, 10_000.0, rng
        )
        with pytest.raises(TokenError):
            verifier.verify(token.to_dict(), now_ms=0.0)

    def test_subscribe_rights_rejected_for_publish(
        self, verifier, keypair, second_keypair, rng
    ):
        ad = make_advertisement(keypair, second_keypair)
        token, _ = AuthorizationToken.create(
            ad, keypair.private, TokenRights.SUBSCRIBE, 0.0, 10_000.0, rng
        )
        with pytest.raises(TokenError):
            verifier.verify(token.to_dict(), now_ms=0.0)

    def test_advertisement_cache_used(self, verifier, valid_token_dict):
        verifier.verify(valid_token_dict, now_ms=0.0)
        assert len(verifier._advertisement_cache) == 1
        verifier.verify(valid_token_dict, now_ms=1.0)
        assert len(verifier._advertisement_cache) == 1

    def test_malformed_rejected(self, verifier):
        with pytest.raises(TokenError):
            verifier.verify({"garbage": True}, now_ms=0.0)


class TestGuardApplicability:
    def test_applies_to_trace_publication_topics(self, verifier):
        guard = TraceAuthorizationGuard(verifier)
        message = Message(
            topic=Topic.parse("Constrained/Traces/Broker/Publish-Only/abc/Load"),
            body={},
            source="b1",
        )
        assert guard.applies_to(message)

    @pytest.mark.parametrize(
        "topic",
        [
            "News/Sports",  # unconstrained
            "Constrained/Traces/Broker/Subscribe-Only/Registration",  # funnel topic
            "Constrained/Traces/svc/Subscribe-Only/abc/def",  # entity constrainer
            "Constrained/Admin/Broker/Publish-Only/x",  # not Traces event type
        ],
    )
    def test_does_not_apply_elsewhere(self, verifier, topic):
        guard = TraceAuthorizationGuard(verifier)
        message = Message(topic=Topic.parse(topic), body={}, source="x")
        assert not guard.applies_to(message)
