"""Tests for the simulated machine (CPU, clock, crypto charging)."""

import random

import pytest

from repro.crypto.costmodel import CryptoCostModel, CryptoOp
from repro.sim.engine import Simulator
from repro.sim.machine import Machine
from repro.util.clock import SkewedClock


@pytest.fixture
def one_cpu_machine(sim, rng):
    return Machine(sim, "m", CryptoCostModel(seed=2), rng, cpu_capacity=1)


class TestMachine:
    def test_default_capacity_matches_testbed(self, sim, rng):
        machine = Machine(sim, "m", CryptoCostModel(seed=0), rng)
        assert machine.cpu.capacity == 4

    def test_compute_holds_cpu(self, sim, one_cpu_machine):
        done = []

        def work():
            yield from one_cpu_machine.compute(5.0)
            done.append(sim.now)

        sim.process(work())
        sim.process(work())
        sim.run()
        assert done == [5.0, 10.0]  # serialized on capacity-1 CPU

    def test_charge_returns_sampled_duration(self, sim, one_cpu_machine):
        durations = []

        def work():
            duration = yield from one_cpu_machine.charge(CryptoOp.TRACE_SIGN)
            durations.append((duration, sim.now))

        sim.process(work())
        sim.run()
        duration, end = durations[0]
        assert duration == pytest.approx(end)
        assert 15.0 < duration < 35.0  # near the 24.51 calibration

    def test_charge_zero_cost_is_instant(self, sim, rng):
        machine = Machine(sim, "m", CryptoCostModel.free(), rng)

        def work():
            duration = yield from machine.charge(CryptoOp.TRACE_SIGN)
            return duration

        assert sim.run_process(work()) == 0.0
        assert sim.now == 0.0

    def test_colocated_crypto_contends(self, sim, rng):
        """Two signings on one 1-CPU machine take twice as long as one."""
        machine = Machine(sim, "m", CryptoCostModel.free(), rng, cpu_capacity=1)
        ends = []

        def work():
            yield from machine.compute(10.0)
            ends.append(sim.now)

        sim.process(work())
        sim.process(work())
        sim.run()
        assert ends == [10.0, 20.0]

    def test_clock_defaults_to_sim_clock(self, sim, rng):
        machine = Machine(sim, "m", CryptoCostModel.free(), rng)
        sim.call_later(5.0, lambda: None)
        sim.run()
        assert machine.now() == sim.now

    def test_skewed_clock(self, sim, rng):
        clock = SkewedClock(sim.clock, 40.0)
        machine = Machine(sim, "m", CryptoCostModel.free(), rng, clock=clock)
        assert machine.now() == 40.0


class TestUtilization:
    def test_tracks_busy_time(self, sim, rng):
        from repro.crypto.costmodel import CryptoCostModel

        machine = Machine(sim, "m", CryptoCostModel.free(), rng, cpu_capacity=1)

        def work():
            yield from machine.compute(30.0)

        sim.process(work())
        sim.run(until=100.0)
        assert machine.busy_ms_total == 30.0
        assert machine.utilization() == pytest.approx(0.3)

    def test_utilization_divides_by_capacity(self, sim, rng):
        from repro.crypto.costmodel import CryptoCostModel

        machine = Machine(sim, "m", CryptoCostModel.free(), rng, cpu_capacity=4)

        def work():
            yield from machine.compute(40.0)

        sim.process(work())
        sim.run(until=100.0)
        assert machine.utilization() == pytest.approx(0.1)

    def test_charge_counts_as_busy(self, sim, rng):
        machine = Machine(sim, "m", CryptoCostModel(seed=1), rng)

        def work():
            yield from machine.charge(CryptoOp.TRACE_SIGN)

        sim.process(work())
        sim.run(until=1000.0)
        assert machine.busy_ms_total > 15.0

    def test_zero_elapsed(self, sim, rng):
        machine = Machine(sim, "m", CryptoCostModel.free(), rng)
        assert machine.utilization() == 0.0
