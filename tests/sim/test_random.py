"""Tests for named random streams."""

from repro.sim.random import RandomStreams


class TestRandomStreams:
    def test_same_name_same_stream(self):
        streams = RandomStreams(1)
        assert streams.stream("a") is streams.stream("a")

    def test_deterministic_across_instances(self):
        a = RandomStreams(7).stream("link").random()
        b = RandomStreams(7).stream("link").random()
        assert a == b

    def test_streams_independent(self):
        """Draws from one stream do not perturb another."""
        streams1 = RandomStreams(3)
        streams1.stream("noise").random()  # consume from an unrelated stream
        v1 = streams1.stream("target").random()

        streams2 = RandomStreams(3)
        v2 = streams2.stream("target").random()
        assert v1 == v2

    def test_different_names_differ(self):
        streams = RandomStreams(0)
        assert streams.stream("x").random() != streams.stream("y").random()

    def test_different_master_seeds_differ(self):
        assert (
            RandomStreams(1).stream("s").random()
            != RandomStreams(2).stream("s").random()
        )

    def test_fork_is_deterministic_and_distinct(self):
        parent = RandomStreams(5)
        child_a = parent.fork("node-a")
        child_b = parent.fork("node-b")
        assert child_a.stream("s").random() != child_b.stream("s").random()
        again = RandomStreams(5).fork("node-a")
        assert again.stream("s").random() == RandomStreams(5).fork("node-a").stream("s").random()

    def test_derive_seed_stable(self):
        streams = RandomStreams(9)
        assert streams.derive_seed("x") == streams.derive_seed("x")
        assert streams.derive_seed("x") != streams.derive_seed("y")
