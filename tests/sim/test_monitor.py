"""Tests for the simulation monitor."""

import pytest

from repro.sim.monitor import Monitor, Series


class TestSeries:
    def test_record_and_summary(self):
        series = Series("latency")
        series.record(0.0, 10.0)
        series.record(1.0, 20.0)
        assert len(series) == 2
        assert series.summary().mean == pytest.approx(15.0)
        assert series.last() == 20.0

    def test_empty_last_raises(self):
        with pytest.raises(ValueError):
            Series("x").last()


class TestMonitor:
    def test_series_get_or_create(self, monitor):
        a = monitor.series("s")
        b = monitor.series("s")
        assert a is b

    def test_record_shortcut(self, monitor):
        monitor.record("lat", 1.0, 5.0)
        monitor.record("lat", 2.0, 7.0)
        assert monitor.summary("lat").count == 2

    def test_has_series(self, monitor):
        assert not monitor.has_series("x")
        monitor.series("x")  # created but empty
        assert not monitor.has_series("x")
        monitor.record("x", 0.0, 1.0)
        assert monitor.has_series("x")

    def test_summary_unknown_raises(self, monitor):
        with pytest.raises(KeyError):
            monitor.summary("nope")

    def test_counters(self, monitor):
        monitor.increment("msgs")
        monitor.increment("msgs", 4)
        assert monitor.count("msgs") == 5
        assert monitor.count("other") == 0
        assert monitor.counters() == {"msgs": 5}

    def test_event_log(self, monitor):
        monitor.log(1.0, "violation", who="mallory")
        monitor.log(2.0, "terminated", who="mallory")
        assert len(monitor.events()) == 2
        assert monitor.events("violation") == [(1.0, "violation", {"who": "mallory"})]

    def test_series_names_sorted(self, monitor):
        monitor.record("b", 0, 1)
        monitor.record("a", 0, 1)
        assert monitor.series_names() == ["a", "b"]


class TestExport:
    def test_to_dict_shape(self, monitor):
        monitor.increment("msgs", 3)
        monitor.record("lat", 1.0, 5.0)
        monitor.record("lat", 2.0, 7.0)
        monitor.log(1.5, "violation", who="eve")
        data = monitor.to_dict()
        assert data["counters"] == {"msgs": 3}
        assert data["series"]["lat"]["count"] == 2
        assert data["series"]["lat"]["mean"] == pytest.approx(6.0)
        assert "times" not in data["series"]["lat"]
        assert data["events"][0]["kind"] == "violation"

    def test_to_dict_with_samples(self, monitor):
        monitor.record("lat", 1.0, 5.0)
        data = monitor.to_dict(include_samples=True)
        assert data["series"]["lat"]["times"] == [1.0]
        assert data["series"]["lat"]["values"] == [5.0]

    def test_to_json_parses(self, monitor):
        import json

        monitor.increment("x")
        monitor.record("s", 0.0, 1.0)
        parsed = json.loads(monitor.to_json())
        assert parsed["counters"]["x"] == 1

    def test_empty_series_excluded(self, monitor):
        monitor.series("hollow")
        assert "hollow" not in monitor.to_dict()["series"]
