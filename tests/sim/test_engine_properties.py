"""Property-based tests on the discrete-event kernel's core invariants."""

from hypothesis import given, strategies as st

from repro.sim.engine import Simulator

delays = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=60,
)


class TestSchedulingProperties:
    @given(delays)
    def test_callbacks_fire_in_time_order(self, ds):
        sim = Simulator()
        fired = []
        for i, d in enumerate(ds):
            sim.call_later(d, lambda i=i, d=d: fired.append((d, i)))
        sim.run()
        assert [f[0] for f in fired] == sorted(f[0] for f in fired)
        assert len(fired) == len(ds)

    @given(delays)
    def test_equal_times_fifo(self, ds):
        """Callbacks scheduled for the same instant run in submission order."""
        sim = Simulator()
        fired = []
        for i, d in enumerate(ds):
            sim.call_later(d, lambda i=i, d=d: fired.append((d, i)))
        sim.run()
        for (d1, i1), (d2, i2) in zip(fired, fired[1:], strict=False):
            if d1 == d2:
                assert i1 < i2

    @given(delays)
    def test_clock_ends_at_latest_event(self, ds):
        sim = Simulator()
        for d in ds:
            sim.call_later(d, lambda: None)
        sim.run()
        assert sim.now == max(ds)

    @given(delays, st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_run_until_is_a_clean_boundary(self, ds, until):
        sim = Simulator()
        fired = []
        for d in ds:
            sim.call_later(d, lambda d=d: fired.append(d))
        sim.run(until=until)
        assert all(d <= until for d in fired)
        assert sorted(fired) == sorted(d for d in ds if d <= until)
        assert sim.now == until
        # resuming runs the remainder exactly once
        sim.run()
        assert sorted(fired) == sorted(ds)

    @given(st.lists(st.floats(min_value=0.01, max_value=1e3), min_size=1, max_size=20))
    def test_nested_timeouts_accumulate(self, ds):
        sim = Simulator()

        def proc():
            for d in ds:
                yield sim.timeout(d)
            return sim.now

        total = sim.run_process(proc())
        assert abs(total - sum(ds)) < 1e-6 * max(1.0, sum(ds))


class TestResourceProperties:
    @given(
        st.integers(min_value=1, max_value=4),
        st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=1, max_size=20),
    )
    def test_resource_conservation(self, capacity, durations):
        """Total busy time is conserved and concurrency never exceeds
        capacity."""
        sim = Simulator()
        resource = sim.resource(capacity)
        live = [0]
        peaks = []

        def worker(duration):
            yield resource.request()
            live[0] += 1
            peaks.append(live[0])
            yield sim.timeout(duration)
            live[0] -= 1
            resource.release()

        for d in durations:
            sim.process(worker(d))
        sim.run()
        assert max(peaks) <= capacity
        assert resource.in_use == 0
        # makespan is at least total work / capacity
        assert sim.now >= sum(durations) / capacity - 1e-9
        # ... and at most total work (full serialization)
        assert sim.now <= sum(durations) + 1e-9
