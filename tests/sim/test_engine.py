"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Event, Interrupt, Simulator


class TestClockAndScheduling:
    def test_time_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_call_later_ordering(self, sim):
        order = []
        sim.call_later(5.0, lambda: order.append("b"))
        sim.call_later(1.0, lambda: order.append("a"))
        sim.call_later(10.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 10.0

    def test_same_time_fifo(self, sim):
        order = []
        for i in range(5):
            sim.call_later(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_run_until(self, sim):
        fired = []
        sim.call_later(5.0, lambda: fired.append(5))
        sim.call_later(15.0, lambda: fired.append(15))
        sim.run(until=10.0)
        assert fired == [5]
        assert sim.now == 10.0
        sim.run(until=20.0)
        assert fired == [5, 15]

    def test_cannot_schedule_in_past(self, sim):
        with pytest.raises(SimulationError):
            sim.call_later(-1.0, lambda: None)

    def test_call_at(self, sim):
        at = []
        sim.call_at(7.5, lambda: at.append(sim.now))
        sim.run()
        assert at == [7.5]

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_livelock_guard(self, sim):
        def reschedule():
            sim.call_later(0.0, reschedule)

        sim.call_later(0.0, reschedule)
        with pytest.raises(SimulationError):
            sim.run(max_steps=100)


class TestEvents:
    def test_succeed_delivers_value(self, sim):
        event = sim.event("e")
        got = []
        event.add_callback(lambda e: got.append(e.value))
        event.succeed(42)
        sim.run()
        assert got == [42]

    def test_double_trigger_rejected(self, sim):
        event = sim.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)
        with pytest.raises(SimulationError):
            event.fail(RuntimeError())

    def test_value_before_trigger_raises(self, sim):
        event = sim.event("pending")
        with pytest.raises(SimulationError):
            _ = event.value

    def test_late_callback_still_runs(self, sim):
        event = sim.event()
        event.succeed("x")
        sim.run()
        got = []
        event.add_callback(lambda e: got.append(e.value))
        sim.run()
        assert got == ["x"]

    def test_failed_event_raises_in_process(self, sim):
        event = sim.event()
        caught = []

        def proc():
            try:
                yield event
            except ValueError as exc:
                caught.append(str(exc))

        sim.process(proc())
        sim.call_later(1.0, lambda: event.fail(ValueError("boom")))
        sim.run()
        assert caught == ["boom"]


class TestProcesses:
    def test_timeout_advances_clock(self, sim):
        seen = []

        def proc():
            yield sim.timeout(3.0)
            seen.append(sim.now)
            yield sim.timeout(4.0)
            seen.append(sim.now)

        sim.process(proc())
        sim.run()
        assert seen == [3.0, 7.0]

    def test_return_value(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return "result"

        assert sim.run_process(proc()) == "result"

    def test_process_is_joinable(self, sim):
        def child():
            yield sim.timeout(5.0)
            return 99

        results = []

        def parent():
            value = yield sim.process(child())
            results.append((sim.now, value))

        sim.process(parent())
        sim.run()
        assert results == [(5.0, 99)]

    def test_yielding_non_event_fails_process(self, sim):
        def bad():
            yield 42

        proc = sim.process(bad())
        sim.run()
        assert proc.triggered and not proc.ok

    def test_deadlock_detected(self, sim):
        def stuck():
            yield sim.event("never")

        with pytest.raises(SimulationError):
            sim.run_process(stuck())

    def test_interrupt(self, sim):
        log = []

        def worker():
            try:
                yield sim.timeout(100.0)
                log.append("finished")
            except Interrupt as stop:
                log.append((sim.now, f"interrupted:{stop.cause}"))

        proc = sim.process(worker())
        sim.call_later(10.0, lambda: proc.interrupt("shutdown"))
        sim.run()
        # interrupted at t=10, long before the 100 ms timeout
        assert log == [(10.0, "interrupted:shutdown")]

    def test_unhandled_interrupt_terminates_quietly(self, sim):
        def worker():
            yield sim.timeout(100.0)

        proc = sim.process(worker())
        sim.call_later(1.0, lambda: proc.interrupt())
        sim.run()
        assert proc.triggered and proc.ok

    def test_interrupt_after_completion_is_noop(self, sim):
        def worker():
            yield sim.timeout(1.0)
            return "done"

        proc = sim.process(worker())
        sim.run()
        proc.interrupt()
        sim.run()
        assert proc.value == "done"


class TestCombinators:
    def test_all_of(self, sim):
        def proc():
            values = yield sim.all_of([sim.timeout(2.0, "a"), sim.timeout(5.0, "b")])
            return (sim.now, values)

        assert sim.run_process(proc()) == (5.0, ["a", "b"])

    def test_all_of_empty(self, sim):
        def proc():
            values = yield sim.all_of([])
            return values

        assert sim.run_process(proc()) == []

    def test_any_of(self, sim):
        def proc():
            index, value = yield sim.any_of(
                [sim.timeout(9.0, "slow"), sim.timeout(2.0, "fast")]
            )
            return (sim.now, index, value)

        assert sim.run_process(proc()) == (2.0, 1, "fast")

    def test_any_of_requires_events(self, sim):
        with pytest.raises(SimulationError):
            sim.any_of([])


class TestQueue:
    def test_fifo(self, sim):
        queue = sim.queue("q")
        got = []

        def consumer():
            for _ in range(3):
                item = yield queue.get()
                got.append(item)

        sim.process(consumer())
        for item in ("x", "y", "z"):
            queue.put(item)
        sim.run()
        assert got == ["x", "y", "z"]

    def test_get_blocks_until_put(self, sim):
        queue = sim.queue()
        got = []

        def consumer():
            item = yield queue.get()
            got.append((sim.now, item))

        sim.process(consumer())
        sim.call_later(10.0, lambda: queue.put("late"))
        sim.run()
        assert got == [(10.0, "late")]

    def test_len(self, sim):
        queue = sim.queue()
        queue.put(1)
        queue.put(2)
        assert len(queue) == 2


class TestResource:
    def test_serializes_capacity_one(self, sim):
        resource = sim.resource(1, "cpu")
        spans = []

        def worker(name, duration):
            yield resource.request()
            start = sim.now
            yield sim.timeout(duration)
            resource.release()
            spans.append((name, start, sim.now))

        sim.process(worker("a", 5.0))
        sim.process(worker("b", 3.0))
        sim.run()
        assert spans == [("a", 0.0, 5.0), ("b", 5.0, 8.0)]

    def test_capacity_two_runs_in_parallel(self, sim):
        resource = sim.resource(2)
        ends = []

        def worker(duration):
            yield from resource.use(duration)
            ends.append(sim.now)

        sim.process(worker(5.0))
        sim.process(worker(5.0))
        sim.run()
        assert ends == [5.0, 5.0]

    def test_release_idle_rejected(self, sim):
        resource = sim.resource(1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_queue_length(self, sim):
        resource = sim.resource(1)

        def hold():
            yield from resource.use(10.0)

        sim.process(hold())
        sim.process(hold())
        sim.process(hold())
        sim.run(until=1.0)
        assert resource.in_use == 1
        assert resource.queue_length == 2

    def test_invalid_capacity(self, sim):
        with pytest.raises(SimulationError):
            sim.resource(0)

    def test_use_releases_on_completion(self, sim):
        resource = sim.resource(1)

        def worker():
            yield from resource.use(2.0)

        sim.process(worker())
        sim.run()
        assert resource.in_use == 0


class TestProcessFailure:
    def test_exception_fails_process(self, sim):
        def boom():
            yield sim.timeout(1.0)
            raise RuntimeError("kaboom")

        proc = sim.process(boom())
        sim.run()
        assert proc.triggered and not proc.ok
        with pytest.raises(RuntimeError):
            _ = proc.value

    def test_exception_propagates_to_joiner(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise ValueError("child failed")

        caught = []

        def parent():
            try:
                yield sim.process(child())
            except ValueError as exc:
                caught.append(str(exc))

        sim.process(parent())
        sim.run()
        assert caught == ["child failed"]

    def test_run_process_raises(self, sim):
        def boom():
            yield sim.timeout(1.0)
            raise KeyError("x")

        with pytest.raises(KeyError):
            sim.run_process(boom())
