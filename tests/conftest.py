"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.crypto.certificates import CertificateAuthority
from repro.crypto.costmodel import CryptoCostModel
from repro.crypto.rsa import generate_rsa_keypair
from repro.sim.engine import Simulator
from repro.sim.machine import Machine
from repro.sim.monitor import Monitor


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def monitor() -> Monitor:
    return Monitor()


@pytest.fixture(scope="session")
def session_rng() -> random.Random:
    return random.Random(0xDECADE)


@pytest.fixture(scope="session")
def keypair(session_rng):
    """One RSA key pair shared across the session (keygen is the slow op)."""
    return generate_rsa_keypair(session_rng)


@pytest.fixture(scope="session")
def second_keypair(session_rng):
    return generate_rsa_keypair(session_rng)


@pytest.fixture
def ca(rng) -> CertificateAuthority:
    return CertificateAuthority("test-ca", rng)


@pytest.fixture
def free_cost_model() -> CryptoCostModel:
    """Cost model charging zero time — for purely functional tests."""
    return CryptoCostModel.free()


@pytest.fixture
def machine(sim, rng) -> Machine:
    return Machine(sim, "m0", CryptoCostModel(seed=1), rng)
