"""The CI pipeline definition must stay parseable and complete."""

from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

WORKFLOW = Path(__file__).resolve().parent.parent / ".github" / "workflows" / "ci.yml"


@pytest.fixture(scope="module")
def workflow() -> dict:
    return yaml.safe_load(WORKFLOW.read_text())


def test_workflow_parses(workflow):
    assert workflow["name"] == "CI"


def test_triggers_cover_push_and_pr(workflow):
    # PyYAML parses the bare `on:` key as boolean True
    triggers = workflow.get("on", workflow.get(True))
    assert "push" in triggers
    assert "pull_request" in triggers


def test_concurrency_cancels_superseded_runs(workflow):
    concurrency = workflow["concurrency"]
    assert concurrency["cancel-in-progress"] is True
    assert "github.ref" in concurrency["group"]


def test_has_lint_analyze_test_bench_and_perf_jobs(workflow):
    jobs = workflow["jobs"]
    assert set(jobs) == {
        "lint",
        "analyze",
        "test",
        "bench-smoke",
        "chaos-smoke",
        "scale-smoke",
        "campaign-smoke",
        "perf-gate",
    }


def test_analyze_job_runs_domain_linter(workflow):
    runs = [step.get("run") or "" for step in workflow["jobs"]["analyze"]["steps"]]
    assert any("repro analyze src" in run for run in runs)


def test_analyze_job_runs_doc_gates(workflow):
    runs = [step.get("run") or "" for step in workflow["jobs"]["analyze"]["steps"]]
    assert any("tools/check_metric_docs.py" in run for run in runs)
    assert any("tools/check_docstrings.py" in run for run in runs)
    assert any("tools/check_doc_links.py" in run for run in runs)


def test_test_matrix_covers_supported_pythons_and_codecs(workflow):
    job = workflow["jobs"]["test"]
    matrix = job["strategy"]["matrix"]
    assert matrix["python-version"] == ["3.10", "3.11", "3.12"]
    assert matrix["codec"] == ["json", "compact"]
    assert job["env"]["REPRO_CODEC"] == "${{ matrix.codec }}"


def test_pythonpath_is_src(workflow):
    assert workflow["env"]["PYTHONPATH"] == "src"


def test_lint_job_runs_pinned_ruff(workflow):
    steps = workflow["jobs"]["lint"]["steps"]
    runs = [step.get("run") or "" for step in steps]
    assert any("ruff check" in run for run in runs)
    assert any("pip install ruff==" in run for run in runs)


def test_setup_python_steps_cache_pip(workflow):
    for name, job in workflow["jobs"].items():
        setup_steps = [
            step
            for step in job["steps"]
            if "setup-python" in (step.get("uses") or "")
        ]
        assert setup_steps, f"job {name} never sets up python"
        for step in setup_steps:
            assert step["with"].get("cache") == "pip", (
                f"job {name} setup-python step is missing pip caching"
            )


def test_bench_smoke_compiles_and_runs_bench_tests(workflow):
    runs = [step.get("run") or "" for step in workflow["jobs"]["bench-smoke"]["steps"]]
    assert any("compileall" in run for run in runs)
    assert any("tests/bench" in run for run in runs)


def test_chaos_smoke_gates_scenario_against_seed(workflow):
    runs = [step.get("run") or "" for step in workflow["jobs"]["chaos-smoke"]["steps"]]
    assert any("repro faults --scenario broker-crash --json" in run for run in runs)
    assert any("chaos_seed.json" in run for run in runs)


def test_scale_smoke_gates_reduced_point_with_rss_ceiling(workflow):
    runs = [step.get("run") or "" for step in workflow["jobs"]["scale-smoke"]["steps"]]
    gate = next(run for run in runs if "repro.bench.scale" in run)
    assert "--compare benchmarks/results/scale_seed.json" in gate
    assert "--max-rss-mb" in gate


def test_campaign_smoke_gates_sweep_and_report_drift(workflow):
    runs = [
        step.get("run") or ""
        for step in workflow["jobs"]["campaign-smoke"]["steps"]
    ]
    gate = next(run for run in runs if "repro campaign run" in run)
    assert "--spec benchmarks/campaigns/smoke.json" in gate
    assert "--compare benchmarks/results/campaigns/smoke/snapshot.json" in gate
    regen = next(run for run in runs if "repro campaign report" in run)
    assert "git diff --exit-code benchmarks/results/campaigns/smoke" in regen


def test_analyze_job_runs_experiments_footer_gate(workflow):
    runs = [step.get("run") or "" for step in workflow["jobs"]["analyze"]["steps"]]
    assert any("tools/check_experiments.py" in run for run in runs)


def test_analyze_job_gates_analytics_seed_and_report_drift(workflow):
    runs = [step.get("run") or "" for step in workflow["jobs"]["analyze"]["steps"]]
    smoke = next(run for run in runs if "repro analytics run" in run)
    assert "benchmarks/results/analytics/analytics_seed.json" in smoke
    assert "repro analytics report" in smoke
    assert "git diff --exit-code benchmarks/results/analytics" in smoke


def test_perf_gate_runs_both_codecs_against_committed_baselines(workflow):
    runs = [step.get("run") or "" for step in workflow["jobs"]["perf-gate"]["steps"]]
    assert any(
        "repro.bench.perf_gate" in run and "wire_codec_before.json" in run
        for run in runs
    )
    assert any(
        "repro.bench.perf_gate" in run and "wire_codec_after.json" in run
        for run in runs
    )
    assert any("--codec json" in run for run in runs)
    assert any("--codec compact" in run for run in runs)


def test_analyze_job_enforces_the_baseline_ratchet(workflow):
    runs = [step.get("run") or "" for step in workflow["jobs"]["analyze"]["steps"]]
    gate = next(run for run in runs if "repro analyze src" in run)
    assert "--baseline analysis_baseline.json" in gate
    assert "--sarif analysis.sarif" in gate
    assert "--stats" in gate


def test_analyze_job_uploads_sarif_to_code_scanning(workflow):
    steps = workflow["jobs"]["analyze"]["steps"]
    upload = next(
        step
        for step in steps
        if "codeql-action/upload-sarif" in (step.get("uses") or "")
    )
    assert upload["with"]["sarif_file"] == "analysis.sarif"
    assert upload.get("if") == "always()"
    assert workflow["jobs"]["analyze"]["permissions"]["security-events"] == "write"
