"""The CI pipeline definition must stay parseable and complete."""

from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

WORKFLOW = Path(__file__).resolve().parent.parent / ".github" / "workflows" / "ci.yml"


@pytest.fixture(scope="module")
def workflow() -> dict:
    return yaml.safe_load(WORKFLOW.read_text())


def test_workflow_parses(workflow):
    assert workflow["name"] == "CI"


def test_triggers_cover_push_and_pr(workflow):
    # PyYAML parses the bare `on:` key as boolean True
    triggers = workflow.get("on", workflow.get(True))
    assert "push" in triggers
    assert "pull_request" in triggers


def test_has_lint_analyze_test_and_bench_jobs(workflow):
    jobs = workflow["jobs"]
    assert set(jobs) == {"lint", "analyze", "test", "bench-smoke", "chaos-smoke"}


def test_analyze_job_runs_domain_linter(workflow):
    runs = [step.get("run") or "" for step in workflow["jobs"]["analyze"]["steps"]]
    assert any("repro analyze src" in run for run in runs)


def test_analyze_job_runs_doc_gates(workflow):
    runs = [step.get("run") or "" for step in workflow["jobs"]["analyze"]["steps"]]
    assert any("tools/check_metric_docs.py" in run for run in runs)
    assert any("tools/check_docstrings.py" in run for run in runs)


def test_test_matrix_covers_supported_pythons(workflow):
    matrix = workflow["jobs"]["test"]["strategy"]["matrix"]
    assert matrix["python-version"] == ["3.10", "3.11", "3.12"]


def test_pythonpath_is_src(workflow):
    assert workflow["env"]["PYTHONPATH"] == "src"


def test_lint_job_runs_ruff(workflow):
    steps = workflow["jobs"]["lint"]["steps"]
    assert any("ruff check" in (step.get("run") or "") for step in steps)


def test_bench_smoke_compiles_and_runs_bench_tests(workflow):
    runs = [step.get("run") or "" for step in workflow["jobs"]["bench-smoke"]["steps"]]
    assert any("compileall" in run for run in runs)
    assert any("tests/bench" in run for run in runs)


def test_chaos_smoke_gates_scenario_against_seed(workflow):
    runs = [step.get("run") or "" for step in workflow["jobs"]["chaos-smoke"]["steps"]]
    assert any("repro faults --scenario broker-crash --json" in run for run in runs)
    assert any("chaos_seed.json" in run for run in runs)


def test_chaos_smoke_checks_doc_links(workflow):
    runs = [step.get("run") or "" for step in workflow["jobs"]["chaos-smoke"]["steps"]]
    assert any("check_doc_links" in run for run in runs)
