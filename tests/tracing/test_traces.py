"""Tests for trace types, entity states, and trace payloads (Table 1)."""

import pytest

from repro.tracing.traces import (
    CHANGE_NOTIFICATION_TYPES,
    STATE_TRANSITION_TYPES,
    VALID_TRANSITIONS,
    EntityState,
    LoadInformation,
    NetworkMetrics,
    TraceType,
)


class TestTraceTypes:
    def test_table1_complete(self):
        """Every trace type of Table 1 exists (including GUAGE_INTEREST)."""
        names = {t.name for t in TraceType}
        assert names == {
            "INITIALIZING", "RECOVERING", "READY", "SHUTDOWN",
            "FAILURE_SUSPICION", "FAILED", "DISCONNECT",
            "GUAGE_INTEREST", "JOIN", "REVERTING_TO_SILENT_MODE",
            "ALLS_WELL", "LOAD_INFORMATION", "NETWORK_METRICS",
        }

    def test_for_state(self):
        assert TraceType.for_state(EntityState.READY) is TraceType.READY

    def test_category_sets_disjoint(self):
        assert not (CHANGE_NOTIFICATION_TYPES & STATE_TRANSITION_TYPES)

    def test_state_transition_set(self):
        assert TraceType.READY in STATE_TRANSITION_TYPES
        assert TraceType.FAILED in CHANGE_NOTIFICATION_TYPES


class TestEntityStateMachine:
    def test_legal_paths(self):
        assert EntityState.READY in VALID_TRANSITIONS[EntityState.INITIALIZING]
        assert EntityState.RECOVERING in VALID_TRANSITIONS[EntityState.READY]
        assert EntityState.READY in VALID_TRANSITIONS[EntityState.RECOVERING]

    def test_shutdown_terminal(self):
        assert VALID_TRANSITIONS[EntityState.SHUTDOWN] == frozenset()

    def test_cannot_skip_initialization(self):
        assert EntityState.RECOVERING not in VALID_TRANSITIONS[EntityState.INITIALIZING]


class TestLoadInformation:
    def test_roundtrip(self):
        load = LoadInformation(0.5, 512.0, 2048.0, workload=7)
        assert LoadInformation.from_dict(load.to_dict()) == load
        assert load.memory_utilization == pytest.approx(0.25)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(cpu_utilization=1.5, memory_used_mb=0, memory_total_mb=1, workload=0),
            dict(cpu_utilization=-0.1, memory_used_mb=0, memory_total_mb=1, workload=0),
            dict(cpu_utilization=0.5, memory_used_mb=2, memory_total_mb=1, workload=0),
            dict(cpu_utilization=0.5, memory_used_mb=0, memory_total_mb=0, workload=0),
            dict(cpu_utilization=0.5, memory_used_mb=0, memory_total_mb=1, workload=-1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LoadInformation(**kwargs)


class TestNetworkMetrics:
    def test_roundtrip(self):
        metrics = NetworkMetrics(0.1, 12.0, 2.0, 0.05, 100_000.0)
        assert NetworkMetrics.from_dict(metrics.to_dict()) == metrics

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(loss_rate=1.5, mean_rtt_ms=1, jitter_ms=0, out_of_order_rate=0,
                 bandwidth_estimate_kbps=1),
            dict(loss_rate=0, mean_rtt_ms=-1, jitter_ms=0, out_of_order_rate=0,
                 bandwidth_estimate_kbps=1),
            dict(loss_rate=0, mean_rtt_ms=1, jitter_ms=0, out_of_order_rate=2,
                 bandwidth_estimate_kbps=1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            NetworkMetrics(**kwargs)
