"""Unit-level tests of the broker-side TraceManager.

Integration flows are in tests/integration/; these hit the rejection and
bookkeeping paths directly.
"""

import pytest

from repro import build_deployment
from repro.auth.credentials import EntityCredentials
from repro.crypto.certificates import CertificateAuthority
from repro.tracing.broker_ops import category_of
from repro.tracing.interest import InterestCategory
from repro.tracing.traces import TraceType


@pytest.fixture
def dep():
    return build_deployment(broker_ids=["b1"], seed=800)


def registered_entity(dep, name="svc", **kwargs):
    entity = dep.add_traced_entity(name, **kwargs)
    entity.start("b1")
    dep.sim.run(until=dep.sim.now + 3_000)
    return entity


class TestCategoryOf:
    def test_mapping(self):
        assert category_of(TraceType.JOIN) is InterestCategory.CHANGE_NOTIFICATIONS
        assert category_of(TraceType.FAILED) is InterestCategory.CHANGE_NOTIFICATIONS
        assert category_of(TraceType.READY) is InterestCategory.STATE_TRANSITIONS
        assert category_of(TraceType.ALLS_WELL) is InterestCategory.ALL_UPDATES
        assert category_of(TraceType.LOAD_INFORMATION) is InterestCategory.LOAD
        assert (
            category_of(TraceType.NETWORK_METRICS)
            is InterestCategory.NETWORK_METRICS
        )

    def test_gauge_has_no_category(self):
        with pytest.raises(ValueError):
            category_of(TraceType.GUAGE_INTEREST)


class TestRegistrationRejections:
    def test_rogue_ca_credentials_rejected(self, dep):
        """An entity with credentials from an untrusted CA is refused."""
        from repro.errors import RegistrationError
        from repro.tracing.entity import TracedEntity
        from repro.util.identifiers import EntityId

        rogue_ca = CertificateAuthority(
            "rogue", dep.network.streams.stream("rogue")
        )
        machine = dep.network.machine("machine-rogue-entity")
        credentials = EntityCredentials.issue("rogue-svc", rogue_ca, machine.rng)
        entity = TracedEntity(
            sim=dep.sim,
            entity_id=EntityId("rogue-svc"),
            network=dep.network,
            machine=machine,
            credentials=credentials,
            tdn=dep.tdn,
            monitor=dep.monitor,
        )
        proc = entity.start("b1")
        dep.sim.run(until=15_000)
        # the TDN already refuses the topic creation
        assert proc.triggered and not proc.ok
        assert dep.manager_of("b1").session_of("rogue-svc") is None

    def test_advertisement_owned_by_other_entity_rejected(self, dep):
        """Registering with someone else's advertisement fails."""
        victim = registered_entity(dep, "victim")
        imposter = dep.add_traced_entity("imposter")
        dep.sim.run_process(imposter.create_trace_topic())
        imposter.connect("b1")
        # swap in the victim's advertisement
        imposter.advertisement = victim.advertisement
        from repro.errors import RegistrationError

        proc = dep.sim.process(imposter.register())
        dep.sim.run(until=dep.sim.now + 15_000)
        assert proc.triggered and not proc.ok
        assert dep.monitor.count("trace.registrations_rejected") >= 1

    def test_expired_topic_lifetime_rejected(self, dep):
        entity = dep.add_traced_entity("svc")
        entity.topic_lifetime_ms = 100.0  # expires almost immediately
        dep.sim.run_process(entity.create_trace_topic())
        entity.connect("b1")
        dep.sim.run(until=dep.sim.now + 5_000)  # let the lifetime lapse
        proc = dep.sim.process(entity.register())
        dep.sim.run(until=dep.sim.now + 15_000)
        assert proc.triggered and not proc.ok


class TestEntityMessageHandling:
    def test_unknown_kind_counted(self, dep):
        entity = registered_entity(dep)
        dep.sim.run_process(entity._send_session_message({"kind": "mystery"}))
        dep.sim.run(until=dep.sim.now + 2_000)
        assert dep.monitor.count("trace.entity_messages_unknown") == 1

    def test_malformed_load_report_counted(self, dep):
        entity = registered_entity(dep)
        dep.sim.run_process(
            entity._send_session_message({"kind": "load", "load": {"bogus": 1}})
        )
        dep.sim.run(until=dep.sim.now + 2_000)
        assert dep.monitor.count("trace.load_reports_malformed") == 1

    def test_malformed_state_report_counted(self, dep):
        entity = registered_entity(dep)
        dep.sim.run_process(
            entity._send_session_message(
                {"kind": "state_transition", "state": "CONFUSED"}
            )
        )
        dep.sim.run(until=dep.sim.now + 2_000)
        assert dep.monitor.count("trace.state_reports_malformed") == 1

    def test_messages_processed_in_order(self, dep):
        """The per-session worker preserves arrival order even though the
        handlers charge different CPU durations."""
        entity = registered_entity(dep)
        tracker = dep.add_tracker("w")
        tracker.connect("b1")
        tracker.track("svc")
        dep.sim.run(until=dep.sim.now + 2_000)

        from repro.tracing.traces import EntityState

        dep.sim.process(entity.report_state(EntityState.RECOVERING))
        dep.sim.process(entity.report_state(EntityState.READY))
        dep.sim.run(until=dep.sim.now + 5_000)
        states = [
            t.trace_type for t in tracker.received
            if t.trace_type in (TraceType.RECOVERING, TraceType.READY)
        ]
        assert states == [TraceType.RECOVERING, TraceType.READY]


class TestSessionBookkeeping:
    def test_active_sessions(self, dep):
        registered_entity(dep, "a")
        registered_entity(dep, "b")
        manager = dep.manager_of("b1")
        assert len(manager.active_sessions()) == 2

    def test_session_of_unknown(self, dep):
        assert dep.manager_of("b1").session_of("ghost") is None

    def test_disconnect_of_unknown_is_noop(self, dep):
        dep.manager_of("b1").handle_client_disconnect("ghost")
        assert dep.monitor.count("trace.published.DISCONNECT") == 0
