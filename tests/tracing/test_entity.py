"""Unit-level tests of the traced entity's error paths and edge cases."""

import pytest

from repro import build_deployment
from repro.errors import RegistrationError
from repro.tracing.traces import EntityState


@pytest.fixture
def dep():
    return build_deployment(broker_ids=["b1"], seed=1200)


class TestStartupPreconditions:
    def test_register_before_topic_creation_fails(self, dep):
        entity = dep.add_traced_entity("svc")
        with pytest.raises(RegistrationError):
            dep.sim.run_process(entity.register())

    def test_session_required_for_reports(self, dep):
        entity = dep.add_traced_entity("svc")
        with pytest.raises(RegistrationError):
            dep.sim.run_process(entity.report_state(EntityState.READY))
        with pytest.raises(RegistrationError):
            dep.sim.run_process(entity.disable_tracing())

    def test_token_delivery_requires_registration(self, dep):
        entity = dep.add_traced_entity("svc")
        dep.sim.run_process(entity.create_trace_topic())
        with pytest.raises(RegistrationError):
            dep.sim.run_process(entity.deliver_token())


class TestRegistrationTimeout:
    def test_times_out_when_broker_unresponsive(self, dep):
        entity = dep.add_traced_entity("svc")
        entity.registration_timeout_ms = 2_000.0
        dep.network.fail_broker("b1")  # broker drops everything
        proc = entity.start("b1")
        dep.sim.run(until=30_000)
        assert proc.triggered and not proc.ok
        with pytest.raises(RegistrationError):
            _ = proc.value


class TestStateMachine:
    def test_full_lifecycle(self, dep):
        entity = dep.add_traced_entity("svc")
        entity.start("b1")
        dep.sim.run(until=3_000)
        assert entity.state is EntityState.READY
        dep.sim.run_process(entity.report_state(EntityState.RECOVERING))
        assert entity.state is EntityState.RECOVERING
        dep.sim.run_process(entity.report_state(EntityState.READY))
        dep.sim.run_process(entity.report_state(EntityState.SHUTDOWN))
        assert entity.state is EntityState.SHUTDOWN

    def test_shutdown_is_terminal(self, dep):
        entity = dep.add_traced_entity("svc")
        entity.start("b1")
        dep.sim.run(until=3_000)
        dep.sim.run_process(entity.shutdown())
        with pytest.raises(ValueError):
            dep.sim.run_process(entity.report_state(EntityState.READY))

    def test_same_state_report_allowed(self, dep):
        """Re-announcing the current state is a refresh, not a transition."""
        entity = dep.add_traced_entity("svc")
        entity.start("b1")
        dep.sim.run(until=3_000)
        dep.sim.run_process(entity.report_state(EntityState.READY))
        assert entity.state is EntityState.READY


class TestCrashSemantics:
    def test_crashed_entity_ignores_pings(self, dep):
        entity = dep.add_traced_entity("svc")
        entity.start("b1")
        dep.sim.run(until=3_000)
        answered_before = dep.monitor.count("entity.pings_answered")
        entity.crash()
        dep.sim.run(until=10_000)
        assert dep.monitor.count("entity.pings_answered") <= answered_before + 1

    def test_silent_entity_ignores_pings(self, dep):
        entity = dep.add_traced_entity("svc")
        entity.start("b1")
        dep.sim.run(until=3_000)
        dep.sim.run_process(entity.disable_tracing())
        answered = dep.monitor.count("entity.pings_answered")
        dep.sim.run(until=15_000)
        assert dep.monitor.count("entity.pings_answered") == answered


class TestTrackerPreconditions:
    def test_track_before_connect_raises(self, dep):
        from repro.errors import NotConnectedError

        tracker = dep.add_tracker("w")
        proc = tracker.track("anything")
        dep.sim.run(until=1_000)
        assert proc.triggered and not proc.ok
        with pytest.raises(NotConnectedError):
            _ = proc.value
