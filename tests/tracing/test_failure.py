"""Tests for adaptive ping scheduling and the failure detector."""

import pytest

from repro.errors import ConfigurationError
from repro.tracing.failure import AdaptivePingPolicy, DetectorVerdict, FailureDetector
from repro.tracing.pings import Ping, PingHistory, PingResponse


def full_healthy_history(rtt=5.0):
    history = PingHistory()
    for i in range(10):
        history.record_ping(Ping(i, i * 100.0))
        history.record_response(
            PingResponse(i, i * 100.0, i * 100.0 + 1), i * 100.0 + rtt
        )
    return history


class TestAdaptivePolicy:
    def test_misses_shrink_interval(self):
        policy = AdaptivePingPolicy(base_interval_ms=1000.0, min_interval_ms=100.0)
        history = PingHistory()
        history.record_ping(Ping(0, 0.0))
        history.record_ping(Ping(1, 100.0))
        interval = policy.next_interval_ms(1000.0, history, 5_000.0, now_ms=2_000.0)
        assert interval == pytest.approx(250.0)  # two misses: x0.5^2

    def test_shrink_floors_at_min(self):
        policy = AdaptivePingPolicy(base_interval_ms=1000.0, min_interval_ms=400.0)
        history = PingHistory()
        for i in range(6):
            history.record_ping(Ping(i, i * 10.0))
        interval = policy.next_interval_ms(1000.0, history, 5_000.0, now_ms=10_000.0)
        assert interval == 400.0

    def test_mature_stable_entity_earns_growth(self):
        policy = AdaptivePingPolicy(maturity_ms=30_000.0)
        history = full_healthy_history()
        interval = policy.next_interval_ms(
            1000.0, history, active_duration_ms=60_000.0, now_ms=2_000.0
        )
        assert interval == pytest.approx(1250.0)

    def test_growth_caps_at_max(self):
        policy = AdaptivePingPolicy(max_interval_ms=1100.0)
        history = full_healthy_history()
        interval = policy.next_interval_ms(1000.0, history, 60_000.0, 2_000.0)
        assert interval == 1100.0

    def test_young_entity_no_growth(self):
        policy = AdaptivePingPolicy(maturity_ms=30_000.0)
        history = full_healthy_history()
        interval = policy.next_interval_ms(
            1000.0, history, active_duration_ms=5_000.0, now_ms=2_000.0
        )
        assert interval == 1000.0

    def test_recovery_drifts_back_to_base(self):
        policy = AdaptivePingPolicy(base_interval_ms=1000.0)
        history = full_healthy_history()
        # currently shrunk to 250 after earlier misses, now healthy again
        interval = policy.next_interval_ms(250.0, history, 5_000.0, 2_000.0)
        assert 250.0 < interval <= 1000.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptivePingPolicy(min_interval_ms=2000.0, base_interval_ms=1000.0)
        with pytest.raises(ConfigurationError):
            AdaptivePingPolicy(growth_factor=0.9)
        with pytest.raises(ConfigurationError):
            AdaptivePingPolicy(shrink_factor=1.0)


class TestFailureDetector:
    def test_escalation_path(self):
        detector = FailureDetector(suspicion_threshold=3, failure_threshold=6)
        assert detector.judge(0) is DetectorVerdict.ALIVE
        assert detector.judge(2) is DetectorVerdict.ALIVE
        assert detector.judge(3) is DetectorVerdict.SUSPECT
        assert detector.judge(5) is DetectorVerdict.SUSPECT
        assert detector.judge(6) is DetectorVerdict.FAILED

    def test_suspicion_clears_on_response(self):
        detector = FailureDetector()
        detector.judge(4)
        assert detector.verdict is DetectorVerdict.SUSPECT
        assert detector.judge(0) is DetectorVerdict.ALIVE

    def test_failed_is_terminal(self):
        detector = FailureDetector()
        detector.judge(10)
        assert detector.judge(0) is DetectorVerdict.FAILED

    def test_reset_for_reregistration(self):
        detector = FailureDetector()
        detector.judge(10)
        detector.reset()
        assert detector.verdict is DetectorVerdict.ALIVE

    def test_thresholds_validated(self):
        with pytest.raises(ConfigurationError):
            FailureDetector(suspicion_threshold=5, failure_threshold=5)
        with pytest.raises(ConfigurationError):
            FailureDetector(suspicion_threshold=0, failure_threshold=3)
