"""Tests for the NWS-style forecaster."""

import pytest
from hypothesis import given, strategies as st

from repro import build_deployment
from repro.tracing.forecast import NetworkForecaster, SeriesForecaster


class TestSeriesForecaster:
    def test_no_data_no_forecast(self):
        assert SeriesForecaster().forecast() is None

    def test_constant_series_predicted_exactly(self):
        forecaster = SeriesForecaster()
        for _ in range(20):
            forecaster.observe(5.0)
        assert forecaster.forecast() == pytest.approx(5.0)
        assert all(e == pytest.approx(0.0) for e in forecaster.errors().values())

    def test_median_wins_with_outliers(self):
        """A spiky series favors the median over last-value."""
        forecaster = SeriesForecaster(window=10)
        values = [10.0, 10.0, 10.0, 200.0] * 8
        for value in values:
            forecaster.observe(value)
        errors = forecaster.errors()
        assert errors["median"] < errors["last"]

    def test_last_wins_on_trend(self):
        """A steadily rising series favors last-value over the mean."""
        forecaster = SeriesForecaster(window=10)
        for i in range(40):
            forecaster.observe(float(i))
        errors = forecaster.errors()
        assert errors["last"] < errors["mean"]
        assert forecaster.best_predictor() == "last"

    def test_window_bounds_memory(self):
        forecaster = SeriesForecaster(window=5)
        for i in range(100):
            forecaster.observe(float(i))
        assert forecaster.sample_count == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            SeriesForecaster(window=0)
        with pytest.raises(ValueError):
            SeriesForecaster(ewma_alpha=0.0)

    @given(st.lists(st.floats(min_value=0.1, max_value=1e4), min_size=1, max_size=60))
    def test_forecast_within_observed_range(self, values):
        forecaster = SeriesForecaster(window=10)
        for value in values:
            forecaster.observe(value)
        forecast = forecaster.forecast()
        window = values[-10:]
        # every predictor is a convex combination of window values (ewma
        # also mixes older values, all within the global range)
        assert min(values) <= forecast <= max(values)
        assert forecast == pytest.approx(forecast)  # not NaN


class TestNetworkForecasterLive:
    def test_forecasts_rtt_from_traces(self):
        dep = build_deployment(broker_ids=["b1", "b2"], seed=910)
        entity = dep.add_traced_entity("svc")
        tracker = dep.add_tracker("w")
        tracker.connect("b2")
        forecaster = NetworkForecaster(tracker)

        entity.start("b1")
        dep.sim.run(until=3_000)
        tracker.track("svc")
        dep.sim.run(until=60_000)

        rtt = forecaster.forecast_rtt_ms("svc")
        assert rtt is not None
        # RTT entity<->broker is small: a couple of link crossings + CPU
        assert 0.0 < rtt < 200.0
        assert forecaster.forecast_loss_rate("svc") == pytest.approx(0.0)

    def test_unknown_entity(self):
        dep = build_deployment(broker_ids=["b1"], seed=911)
        tracker = dep.add_tracker("w")
        tracker.connect("b1")
        forecaster = NetworkForecaster(tracker)
        assert forecaster.forecast_rtt_ms("ghost") is None
