"""Tests for the availability archive."""

import pytest

from repro import build_deployment
from repro.tracing.archive import AvailabilityArchive, EntityRecord, Interval
from repro.tracing.failure import AdaptivePingPolicy
from repro.tracing.tracker import ReceivedTrace
from repro.tracing.traces import TraceType


def trace(kind, t, entity="svc"):
    return ReceivedTrace(
        trace_type=kind, entity_id=entity, received_ms=t, latency_ms=None, payload={}
    )


class TestInterval:
    def test_closed_duration(self):
        assert Interval(10.0, 30.0).duration_ms(now_ms=100.0) == 20.0

    def test_open_duration_uses_now(self):
        assert Interval(10.0, None).duration_ms(now_ms=100.0) == 90.0

    def test_contains(self):
        interval = Interval(10.0, 30.0)
        assert interval.contains(10.0, 100.0)
        assert interval.contains(29.9, 100.0)
        assert not interval.contains(30.0, 100.0)
        assert not interval.contains(5.0, 100.0)


class TestEntityRecord:
    def test_join_opens_interval(self):
        record = EntityRecord("svc")
        record.observe(trace(TraceType.JOIN, 100.0))
        assert record.up
        assert record.availability(200.0) == 1.0

    def test_failed_closes_interval(self):
        record = EntityRecord("svc")
        record.observe(trace(TraceType.JOIN, 0.0))
        record.observe(trace(TraceType.FAILED, 100.0))
        assert not record.up
        assert record.down_count == 1
        assert record.availability(200.0) == pytest.approx(0.5)

    def test_rejoin_after_failure(self):
        record = EntityRecord("svc")
        record.observe(trace(TraceType.JOIN, 0.0))
        record.observe(trace(TraceType.FAILED, 100.0))
        record.observe(trace(TraceType.JOIN, 150.0))
        assert record.up
        assert record.availability(200.0) == pytest.approx(150.0 / 200.0)
        assert record.mean_time_to_recover_ms() == pytest.approx(50.0)

    def test_suspicion_does_not_close(self):
        record = EntityRecord("svc")
        record.observe(trace(TraceType.JOIN, 0.0))
        record.observe(trace(TraceType.FAILURE_SUSPICION, 50.0))
        assert record.up
        assert record.suspect_since_ms == 50.0
        record.observe(trace(TraceType.ALLS_WELL, 60.0))
        assert record.suspect_since_ms is None

    def test_heartbeats_keep_interval_open_not_duplicated(self):
        record = EntityRecord("svc")
        record.observe(trace(TraceType.JOIN, 0.0))
        for t in (10.0, 20.0, 30.0):
            record.observe(trace(TraceType.ALLS_WELL, t))
        assert len(record.intervals) == 1

    def test_was_up_at(self):
        record = EntityRecord("svc")
        record.observe(trace(TraceType.JOIN, 0.0))
        record.observe(trace(TraceType.SHUTDOWN, 100.0))
        record.observe(trace(TraceType.JOIN, 200.0))
        assert record.was_up_at(50.0, now_ms=300.0)
        assert not record.was_up_at(150.0, now_ms=300.0)
        assert record.was_up_at(250.0, now_ms=300.0)

    def test_mttr_none_without_recovery(self):
        record = EntityRecord("svc")
        record.observe(trace(TraceType.JOIN, 0.0))
        assert record.mean_time_to_recover_ms() is None

    def test_no_data(self):
        record = EntityRecord("svc")
        assert record.availability(100.0) == 0.0
        assert not record.was_up_at(50.0, 100.0)


class TestArchiveLive:
    def test_end_to_end_availability(self):
        dep = build_deployment(
            broker_ids=["b1"],
            seed=900,
            ping_policy=AdaptivePingPolicy(
                base_interval_ms=500.0, min_interval_ms=100.0,
                max_interval_ms=1_000.0, response_deadline_ms=200.0,
            ),
        )
        entity = dep.add_traced_entity("svc")
        tracker = dep.add_tracker("w")
        tracker.connect("b1")
        archive = AvailabilityArchive(tracker)

        entity.start("b1")
        dep.sim.run(until=3_000)
        tracker.track("svc")
        dep.sim.run(until=10_000)

        record = archive.record_of("svc")
        assert record is not None and record.up

        entity.crash()
        dep.sim.run(until=60_000)
        assert not record.up
        assert record.down_count == 1
        assert 0.0 < record.availability(dep.sim.now) < 1.0

        report = archive.report(dep.sim.now)
        assert "svc" in report and "down" in report

    def test_chains_previous_hook(self):
        dep = build_deployment(broker_ids=["b1"], seed=901)
        tracker = dep.add_tracker("w")
        tracker.connect("b1")
        seen = []
        tracker.on_trace = seen.append
        archive = AvailabilityArchive(tracker)
        tracker.on_trace(trace(TraceType.JOIN, 5.0))
        assert len(seen) == 1
        assert archive.record_of("svc").up
