"""Tests for pings, responses and the ping history (section 3.3)."""

import pytest

from repro.tracing.pings import PING_HISTORY_WINDOW, Ping, PingHistory, PingResponse


def respond(history, number, issued, received):
    return history.record_response(
        PingResponse(number=number, issued_ms=issued, entity_stamp_ms=issued + 1),
        received_ms=received,
    )


class TestPingMessages:
    def test_dict_roundtrips(self):
        ping = Ping(number=3, issued_ms=125.5)
        assert Ping.from_dict(ping.to_dict()) == ping
        resp = PingResponse(number=3, issued_ms=125.5, entity_stamp_ms=126.0)
        assert PingResponse.from_dict(resp.to_dict()) == resp

    def test_response_must_echo_number_and_timestamp(self):
        ping = Ping(number=3, issued_ms=100.0)
        good = PingResponse(3, 100.0, 101.0)
        assert good.matches(ping)
        assert not PingResponse(4, 100.0, 101.0).matches(ping)
        assert not PingResponse(3, 99.0, 101.0).matches(ping)


class TestHistoryWindow:
    def test_window_is_paper_ten(self):
        assert PING_HISTORY_WINDOW == 10

    def test_window_slides(self):
        history = PingHistory()
        for i in range(15):
            history.record_ping(Ping(i, float(i)))
        assert len(history) == 10

    def test_last_ping_tracked(self):
        history = PingHistory()
        history.record_ping(Ping(0, 50.0))
        assert history.last_ping_ms == 50.0


class TestResponses:
    def test_match_and_rtt(self):
        history = PingHistory()
        history.record_ping(Ping(0, 100.0))
        assert respond(history, 0, 100.0, 108.0)
        assert history.rtts() == [8.0]
        assert history.mean_rtt_ms() == 8.0

    def test_unmatched_response(self):
        history = PingHistory()
        history.record_ping(Ping(0, 100.0))
        assert not respond(history, 7, 100.0, 108.0)

    def test_duplicate_response_not_rematched(self):
        history = PingHistory()
        history.record_ping(Ping(0, 100.0))
        assert respond(history, 0, 100.0, 105.0)
        assert not respond(history, 0, 100.0, 106.0)
        assert history.rtts() == [5.0]

    def test_out_of_order_detection(self):
        history = PingHistory()
        for i in range(3):
            history.record_ping(Ping(i, 100.0 + i))
        respond(history, 0, 100.0, 110.0)
        respond(history, 2, 102.0, 111.0)
        respond(history, 1, 101.0, 112.0)  # arrives after #2: out of order
        assert history.out_of_order_rate() == pytest.approx(1 / 3)

    def test_unmatched_response_does_not_skew_rates(self):
        """A response for a ping never sent must not enter the stats."""
        history = PingHistory()
        history.record_ping(Ping(0, 100.0))
        respond(history, 0, 100.0, 105.0)
        for _ in range(5):
            assert not respond(history, 99, 100.0, 106.0)
        # denominator is still the single matched response
        assert history.out_of_order_rate() == 0.0

    def test_unmatched_high_number_does_not_advance_watermark(self):
        """A forged/unmatched high number must not mark later real
        responses out of order."""
        history = PingHistory()
        history.record_ping(Ping(0, 100.0))
        respond(history, 50, 999.0, 105.0)  # unmatched: never recorded
        history.record_ping(Ping(1, 200.0))
        assert respond(history, 0, 100.0, 210.0)
        assert respond(history, 1, 200.0, 211.0)
        assert history.out_of_order_rate() == 0.0

    def test_duplicate_response_does_not_skew_rates(self):
        history = PingHistory()
        history.record_ping(Ping(0, 100.0))
        history.record_ping(Ping(1, 200.0))
        respond(history, 1, 200.0, 205.0)
        for _ in range(4):
            assert not respond(history, 1, 200.0, 206.0)  # duplicates
        respond(history, 0, 100.0, 210.0)  # genuinely out of order
        # 2 matched responses, 1 out of order; duplicates counted nowhere
        assert history.out_of_order_rate() == pytest.approx(0.5)


class TestIncarnations:
    """Broker-restart semantics: stale pre-crash state must not poison the
    new incarnation's judgement (regression for the restart false-FAILED
    bug fixed alongside repro.faults)."""

    def test_reset_clears_window_and_watermark(self):
        history = PingHistory()
        for i in range(5):
            history.record_ping(Ping(i, i * 100.0))
        respond(history, 4, 400.0, 405.0)
        history.reset_incarnation()
        assert len(history) == 0
        assert history.last_ping_ms is None
        assert history.rtts() == []
        assert history.consecutive_misses(10_000.0, 400.0) == 0

    def test_post_restart_response_not_marked_out_of_order(self):
        """The old incarnation answered up to #9; after a restart ping
        numbering starts over, and #0's response must not be judged
        out-of-order against the dead incarnation's watermark."""
        history = PingHistory()
        for i in range(10):
            history.record_ping(Ping(i, i * 100.0))
            respond(history, i, i * 100.0, i * 100.0 + 5)
        history.reset_incarnation()
        history.record_ping(Ping(0, 5_000.0))
        assert respond(history, 0, 5_000.0, 5_005.0)
        assert history.out_of_order_rate() < 1 / 10

    def test_stale_record_cannot_swallow_fresh_response(self):
        """Without the issued_ms check a pre-crash unanswered ping #0 would
        absorb the post-restart response to the *new* ping #0, leaving the
        fresh ping to look missed."""
        history = PingHistory()
        history.record_ping(Ping(0, 100.0))  # pre-crash, never answered
        history.record_ping(Ping(0, 9_000.0))  # post-restart reuse of #0
        assert respond(history, 0, 9_000.0, 9_005.0)
        answered = [r for r in history._records if r.answered]
        assert [r.issued_ms for r in answered] == [9_000.0]
        assert history.consecutive_misses(9_500.0, 400.0) == 0

    def test_cumulative_stats_survive_reset(self):
        history = PingHistory()
        for i in range(3):
            history.record_ping(Ping(i, 100.0 + i))
        respond(history, 0, 100.0, 110.0)
        respond(history, 2, 102.0, 111.0)
        respond(history, 1, 101.0, 112.0)  # out of order
        rate_before = history.out_of_order_rate()
        assert rate_before > 0
        history.reset_incarnation()
        assert history.out_of_order_rate() == rate_before


class TestMisses:
    def test_consecutive_misses_counts_trailing_unanswered(self):
        history = PingHistory()
        history.record_ping(Ping(0, 0.0))
        respond(history, 0, 0.0, 5.0)
        history.record_ping(Ping(1, 100.0))
        history.record_ping(Ping(2, 200.0))
        # at t=700 both pings are past a 400 ms deadline
        assert history.consecutive_misses(700.0, 400.0) == 2

    def test_recent_ping_not_judged(self):
        history = PingHistory()
        history.record_ping(Ping(0, 0.0))
        # at t=100 with deadline 400 the ping is still in flight
        assert history.consecutive_misses(100.0, 400.0) == 0

    def test_answered_ping_resets_streak(self):
        history = PingHistory()
        history.record_ping(Ping(0, 0.0))
        history.record_ping(Ping(1, 100.0))
        respond(history, 1, 100.0, 150.0)
        history.record_ping(Ping(2, 200.0))
        assert history.consecutive_misses(900.0, 400.0) == 1

    def test_loss_rate(self):
        history = PingHistory()
        for i in range(4):
            history.record_ping(Ping(i, float(i * 100)))
        respond(history, 0, 0.0, 10.0)
        respond(history, 2, 200.0, 210.0)
        # pings 1 and 3 unanswered and past deadline at t=2000
        assert history.loss_rate(2000.0, 400.0) == pytest.approx(0.5)

    def test_loss_rate_no_data(self):
        assert PingHistory().loss_rate(0.0, 400.0) == 0.0


class TestNetworkMetrics:
    def test_derived_metrics(self):
        history = PingHistory()
        for i, rtt in enumerate([10.0, 12.0, 14.0]):
            history.record_ping(Ping(i, i * 100.0))
            respond(history, i, i * 100.0, i * 100.0 + rtt)
        metrics = history.network_metrics(1000.0, 400.0)
        assert metrics is not None
        assert metrics.mean_rtt_ms == pytest.approx(12.0)
        assert metrics.loss_rate == 0.0
        assert metrics.jitter_ms == pytest.approx(2.0)

    def test_no_data_returns_none(self):
        assert PingHistory().network_metrics(0.0, 400.0) is None

    def test_jitter_single_sample_zero(self):
        history = PingHistory()
        history.record_ping(Ping(0, 0.0))
        respond(history, 0, 0.0, 5.0)
        assert history.jitter_ms() == 0.0
