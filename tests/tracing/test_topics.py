"""Tests for derived trace-topic construction (Table 2)."""

import pytest

from repro.messaging.constrained import AllowedActions, ConstrainedTopic, Distribution
from repro.tracing.interest import InterestCategory
from repro.tracing.topics import REGISTRATION_TOPIC, TraceTopicSet
from repro.tracing.traces import TraceType
from repro.util.identifiers import EntityId, SessionId, UUID128


@pytest.fixture
def topics():
    return TraceTopicSet(trace_topic=UUID128(0xABCD), entity_id=EntityId("svc-1"))


SESSION = SessionId(UUID128(0x1234))


class TestPublicationTopics:
    def test_table2_topic_shapes(self, topics):
        hexval = UUID128(0xABCD).hex
        assert topics.change_notifications.canonical == (
            f"Constrained/Traces/Broker/Publish-Only/{hexval}/ChangeNotifications"
        )
        assert topics.all_updates.canonical.endswith("/AllUpdates")
        assert topics.state_transitions.canonical.endswith("/StateTransitions")
        assert topics.load.canonical.endswith("/Load")
        assert topics.network_metrics.canonical.endswith("/NetworkMetrics")

    def test_all_publication_topics_are_broker_publish_only(self, topics):
        for topic in topics.all_publication_topics():
            ct = ConstrainedTopic.parse(topic.canonical)
            assert ct.event_type == "Traces"
            assert ct.broker_constrained()
            assert ct.allowed_actions is AllowedActions.PUBLISH_ONLY

    def test_topics_embed_unguessable_uuid(self, topics):
        """Knowing the entity id is not enough; the UUID segment is needed."""
        for topic in topics.all_publication_topics():
            assert UUID128(0xABCD).hex in topic.canonical
            assert "svc-1" not in topic.canonical

    def test_topic_for_trace_mapping(self, topics):
        assert topics.topic_for_trace(TraceType.JOIN) == topics.change_notifications
        assert topics.topic_for_trace(TraceType.FAILED) == topics.change_notifications
        assert topics.topic_for_trace(TraceType.READY) == topics.state_transitions
        assert topics.topic_for_trace(TraceType.ALLS_WELL) == topics.all_updates
        assert topics.topic_for_trace(TraceType.LOAD_INFORMATION) == topics.load
        assert (
            topics.topic_for_trace(TraceType.NETWORK_METRICS)
            == topics.network_metrics
        )
        assert (
            topics.topic_for_trace(TraceType.GUAGE_INTEREST)
            == topics.interest_request
        )

    def test_topic_for_category_mapping(self, topics):
        assert (
            topics.topic_for_category(InterestCategory.ALL_UPDATES)
            == topics.all_updates
        )


class TestSessionTopics:
    def test_entity_to_broker_is_limited(self, topics):
        ct = ConstrainedTopic.parse(topics.entity_to_broker(SESSION).canonical)
        assert ct.broker_constrained()
        assert ct.allowed_actions is AllowedActions.SUBSCRIBE_ONLY
        assert ct.distribution is Distribution.SUPPRESS
        assert ct.suffixes == (UUID128(0xABCD).hex, SESSION.topic_segment)

    def test_broker_to_entity_constrained_to_entity(self, topics):
        ct = ConstrainedTopic.parse(topics.broker_to_entity(SESSION).canonical)
        assert ct.constrainer == "svc-1"
        assert ct.allowed_actions is AllowedActions.SUBSCRIBE_ONLY

    def test_session_topics_differ_per_session(self, topics):
        other = SessionId(UUID128(0x9999))
        assert topics.entity_to_broker(SESSION) != topics.entity_to_broker(other)


class TestInterestTopics:
    def test_request_is_publish_only(self, topics):
        ct = ConstrainedTopic.parse(topics.interest_request.canonical)
        assert ct.allowed_actions is AllowedActions.PUBLISH_ONLY
        assert ct.suffixes[-1] == "Interest"

    def test_response_is_subscribe_only(self, topics):
        ct = ConstrainedTopic.parse(topics.interest_response.canonical)
        assert ct.allowed_actions is AllowedActions.SUBSCRIBE_ONLY


class TestRegistrationTopic:
    def test_shape(self):
        ct = ConstrainedTopic.parse(REGISTRATION_TOPIC.canonical)
        assert ct.event_type == "Traces"
        assert ct.allowed_actions is AllowedActions.SUBSCRIBE_ONLY
        assert ct.suffixes == ("Registration",)

    def test_response_topic_per_request(self, topics):
        a = topics.registration_response(EntityId("svc-1"), 1)
        b = topics.registration_response(EntityId("svc-1"), 2)
        assert a != b
        ct = ConstrainedTopic.parse(a.canonical)
        assert ct.constrainer == "svc-1"


class TestKeyDelivery:
    def test_per_tracker(self, topics):
        a = topics.key_delivery("tracker-1")
        b = topics.key_delivery("tracker-2")
        assert a != b
        ct = ConstrainedTopic.parse(a.canonical)
        assert ct.constrainer == "tracker-1"
        assert ct.allowed_actions is AllowedActions.SUBSCRIBE_ONLY
