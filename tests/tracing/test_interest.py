"""Tests for interest gauging state (section 3.5)."""

import pytest

from repro.errors import InterestError
from repro.tracing.interest import (
    ALL_CATEGORIES,
    InterestCategory,
    InterestRegistry,
)


class TestCategories:
    def test_five_categories(self):
        assert len(ALL_CATEGORIES) == 5

    def test_parse_many(self):
        parsed = InterestCategory.parse_many(["load", "all_updates"])
        assert parsed == frozenset(
            {InterestCategory.LOAD, InterestCategory.ALL_UPDATES}
        )

    def test_parse_unknown(self):
        with pytest.raises(InterestError):
            InterestCategory.parse_many(["everything"])


class TestRegistry:
    def test_record_and_query(self):
        registry = InterestRegistry(ttl_ms=1000.0)
        registry.record("t1", frozenset({InterestCategory.LOAD}), now_ms=0.0)
        assert registry.interested_in(InterestCategory.LOAD, 500.0)
        assert not registry.interested_in(InterestCategory.ALL_UPDATES, 500.0)

    def test_no_interest_initially(self):
        registry = InterestRegistry()
        assert not registry.any_interest(0.0)
        for category in ALL_CATEGORIES:
            assert not registry.interested_in(category, 0.0)

    def test_ttl_expiry(self):
        registry = InterestRegistry(ttl_ms=1000.0)
        registry.record("t1", frozenset({InterestCategory.LOAD}), now_ms=0.0)
        assert registry.interested_in(InterestCategory.LOAD, 999.0)
        assert not registry.interested_in(InterestCategory.LOAD, 1001.0)
        assert len(registry) == 0  # reaped

    def test_refresh_extends_ttl(self):
        registry = InterestRegistry(ttl_ms=1000.0)
        registry.record("t1", frozenset({InterestCategory.LOAD}), now_ms=0.0)
        registry.record("t1", frozenset({InterestCategory.LOAD}), now_ms=900.0)
        assert registry.interested_in(InterestCategory.LOAD, 1800.0)

    def test_empty_response_retracts(self):
        registry = InterestRegistry()
        registry.record("t1", frozenset({InterestCategory.LOAD}), 0.0)
        registry.record("t1", frozenset(), 1.0)
        assert not registry.any_interest(2.0)

    def test_explicit_retract(self):
        registry = InterestRegistry()
        registry.record("t1", ALL_CATEGORIES, 0.0)
        registry.retract("t1")
        assert not registry.any_interest(1.0)

    def test_trackers_for(self):
        registry = InterestRegistry()
        registry.record("t2", frozenset({InterestCategory.LOAD}), 0.0)
        registry.record("t1", ALL_CATEGORIES, 0.0)
        assert registry.trackers_for(InterestCategory.LOAD, 1.0) == ["t1", "t2"]
        assert registry.trackers_for(InterestCategory.ALL_UPDATES, 1.0) == ["t1"]

    def test_metadata_stored(self):
        registry = InterestRegistry()
        registry.record(
            "t1",
            ALL_CATEGORIES,
            0.0,
            response_topic="Constrained/x/y",
            credential_subject="tracker-one",
        )
        assert registry.response_topic_of("t1") == "Constrained/x/y"
        assert registry.subject_of("t1") == "tracker-one"
        assert registry.response_topic_of("ghost") is None

    def test_active_categories_union(self):
        registry = InterestRegistry()
        registry.record("t1", frozenset({InterestCategory.LOAD}), 0.0)
        registry.record("t2", frozenset({InterestCategory.ALL_UPDATES}), 0.0)
        assert registry.active_categories(1.0) == frozenset(
            {InterestCategory.LOAD, InterestCategory.ALL_UPDATES}
        )
