"""Property-based tests on ping-history invariants."""

from hypothesis import given, strategies as st

from repro.tracing.pings import Ping, PingHistory, PingResponse


# a scenario: for each ping, whether it is answered and with what RTT
scenario = st.lists(
    st.tuples(
        st.booleans(),  # answered?
        st.floats(min_value=0.5, max_value=50.0, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
)


def play(events, spacing=100.0):
    """Feed a scenario into a history; returns (history, final_time)."""
    history = PingHistory()
    t = 0.0
    for number, (answered, rtt) in enumerate(events):
        t = number * spacing
        history.record_ping(Ping(number, t))
        if answered:
            history.record_response(
                PingResponse(number, t, t + rtt / 2), received_ms=t + rtt
            )
    return history, t


class TestHistoryInvariants:
    @given(scenario)
    def test_window_never_exceeds_ten(self, events):
        history, _ = play(events)
        assert len(history) <= 10

    @given(scenario)
    def test_loss_rate_bounded(self, events):
        history, t = play(events)
        rate = history.loss_rate(t + 10_000.0, 400.0)
        assert 0.0 <= rate <= 1.0

    @given(scenario)
    def test_misses_bounded_by_window(self, events):
        history, t = play(events)
        misses = history.consecutive_misses(t + 10_000.0, 400.0)
        assert 0 <= misses <= 10

    @given(scenario)
    def test_misses_equal_trailing_unanswered(self, events):
        history, t = play(events)
        # compute trailing unanswered within the window by hand
        window = events[-10:]
        expected = 0
        for answered, _ in reversed(window):
            if answered:
                break
            expected += 1
        assert history.consecutive_misses(t + 10_000.0, 400.0) == expected

    @given(scenario)
    def test_rtts_positive_and_counted(self, events):
        history, _ = play(events)
        answered_in_window = sum(1 for a, _ in events[-10:] if a)
        rtts = history.rtts()
        assert len(rtts) == answered_in_window
        assert all(r > 0 for r in rtts)

    @given(scenario)
    def test_all_answered_means_zero_loss(self, events):
        if not all(a for a, _ in events):
            return
        history, t = play(events)
        assert history.loss_rate(t + 10_000.0, 400.0) == 0.0
        assert history.consecutive_misses(t + 10_000.0, 400.0) == 0

    @given(scenario)
    def test_metrics_match_window_stats(self, events):
        history, t = play(events)
        metrics = history.network_metrics(t + 10_000.0, 400.0)
        if not any(a for a, _ in events[-10:]):
            assert metrics is None
        else:
            rtts = history.rtts()
            assert metrics.mean_rtt_ms == sum(rtts) / len(rtts)
