"""Tests for ping coalescing (repro.tracing.coalesce).

Unit coverage of the host-level relay registry and batch demultiplexer,
then deployment-level properties: co-located entities actually share wire
frames, a crashed delegate still relays its siblings' pings (only its own
response is suppressed, so *it* — and nobody else — is declared failed),
and coalescing spends measurably fewer transport bytes than per-session
frames for the same co-located population.
"""

import pytest

from repro.sim.engine import Simulator
from repro.sim.machine import Machine
from repro.tracing.coalesce import (
    PING_BATCH_KIND,
    register_ping_sink,
    relay_ping_batch,
    unregister_ping_sink,
)
from repro.tracing.failure import AdaptivePingPolicy

FAST_POLICY = AdaptivePingPolicy(
    base_interval_ms=500.0,
    min_interval_ms=125.0,
    max_interval_ms=1_000.0,
    response_deadline_ms=200.0,
)


def batch_body(*entries):
    return {
        "kind": PING_BATCH_KIND,
        "pings": [
            {"entity_id": eid, "number": number, "issued_ms": issued}
            for eid, number, issued in entries
        ],
    }


class TestRelayRegistry:
    @pytest.fixture
    def host(self):
        import random

        from repro.crypto.costmodel import CryptoCostModel

        return Machine(
            Simulator(), "host", CryptoCostModel.free(), random.Random(1)
        )

    def test_relay_delivers_to_registered_sinks(self, host):
        got = []
        register_ping_sink(host, "a", lambda ping: got.append(("a", ping.number)))
        register_ping_sink(host, "b", lambda ping: got.append(("b", ping.number)))
        delivered = relay_ping_batch(
            host, batch_body(("a", 1, 0.0), ("b", 7, 0.0))
        )
        assert delivered == 2
        assert got == [("a", 1), ("b", 7)]

    def test_unknown_and_malformed_entries_dropped(self, host):
        got = []
        register_ping_sink(host, "a", lambda ping: got.append(ping.number))
        body = batch_body(("a", 3, 1.0), ("stranger", 9, 1.0))
        body["pings"].append({"entity_id": "a"})  # malformed: no number
        body["pings"].append({"entity_id": "a", "number": "x", "issued_ms": "y"})
        assert relay_ping_batch(host, body) == 1
        assert got == [3]

    def test_reregistration_overwrites_and_unregister_forgets(self, host):
        first, second = [], []
        register_ping_sink(host, "a", lambda ping: first.append(ping))
        register_ping_sink(host, "a", lambda ping: second.append(ping))
        relay_ping_batch(host, batch_body(("a", 1, 0.0)))
        assert not first and len(second) == 1
        unregister_ping_sink(host, "a")
        unregister_ping_sink(host, "a")  # absent: no-op
        assert relay_ping_batch(host, batch_body(("a", 2, 0.0))) == 0

    def test_relay_on_unknown_machine_is_empty(self, host):
        assert relay_ping_batch(host, batch_body(("a", 1, 0.0))) == 0


def build_colocated(entity_count=3, seed=11, **flags):
    from repro import build_deployment
    from repro.messaging.message import reset_message_ids

    # message-id digit width feeds wire sizes; rewind for comparable runs
    reset_message_ids()
    dep = build_deployment(
        broker_ids=["b1", "b2"],
        seed=seed,
        ping_policy=FAST_POLICY,
        **flags,
    )
    entities = [
        dep.add_traced_entity(f"e-{i}", machine_name="shared-host")
        for i in range(entity_count)
    ]
    tracker = dep.add_tracker("w")
    tracker.connect("b2")
    for entity in entities:
        entity.start("b1")
    dep.sim.run(until=2_000)
    for entity in entities:
        tracker.track(str(entity.entity_id))
    return dep, entities, tracker


class TestDeploymentCoalescing:
    def test_colocated_sessions_share_frames(self):
        dep, _, _ = build_colocated()
        dep.sim.run(until=30_000)
        counters = dep.snapshot()["counters"]
        assert counters["tracker.pings.coalesced"] > 0
        batch = dep.snapshot()["histograms"]["tracker.ping.batch_size"]
        assert batch["count"] > 0 and batch["max"] <= 3

    def test_crashed_delegate_still_relays_siblings(self):
        dep, entities, _ = build_colocated()
        dep.sim.run(until=15_000)
        # e-0 sorts first, so it is the preferred delegate while attached
        entities[0].crash()
        dep.sim.run(until=60_000)
        managers = dep.managers["b1"].sessions_by_entity
        failed = {
            eid for eid, s in managers.items() if s.declared_failed
        }
        assert failed == {"e-0"}

    def test_detection_without_coalescing_matches(self):
        dep, entities, _ = build_colocated(ping_coalescing=False)
        dep.sim.run(until=15_000)
        entities[0].crash()
        dep.sim.run(until=60_000)
        failed = {
            eid
            for eid, s in dep.managers["b1"].sessions_by_entity.items()
            if s.declared_failed
        }
        assert failed == {"e-0"}

    def test_coalescing_saves_transport_bytes(self):
        dep_on, _, _ = build_colocated(seed=11)
        dep_on.sim.run(until=30_000)
        dep_off, _, _ = build_colocated(seed=11, ping_coalescing=False)
        dep_off.sim.run(until=30_000)
        sent_on = dep_on.snapshot()["counters"]["transport.bytes.sent"]
        sent_off = dep_off.snapshot()["counters"]["transport.bytes.sent"]
        assert sent_on < sent_off
