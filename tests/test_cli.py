"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_info(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_bench_choices(self):
        args = build_parser().parse_args(["bench", "micro"])
        assert args.experiment == "micro"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "nonsense"])

    def test_demo_choices(self):
        args = build_parser().parse_args(["demo", "failure", "--seed", "9"])
        assert args.scenario == "failure"
        assert args.seed == 9

    def test_metrics_flags(self):
        args = build_parser().parse_args(["metrics", "--json", "--seed", "5"])
        assert args.command == "metrics"
        assert args.json is True
        assert args.seed == 5

    def test_metrics_diff_flags(self):
        args = build_parser().parse_args(
            ["metrics", "--diff", "before.json", "after.json", "--all"]
        )
        assert args.diff == ["before.json", "after.json"]
        assert args.all is True

    def test_faults_flags(self):
        args = build_parser().parse_args(
            ["faults", "--scenario", "broker-crash", "--json", "--seed", "7"]
        )
        assert args.command == "faults"
        assert args.scenario == "broker-crash"
        assert args.json is True
        assert args.seed == 7

    def test_faults_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "--scenario", "meteor-strike"])

    def test_faults_requires_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults"])

    def test_campaign_run_flags(self):
        args = build_parser().parse_args(
            [
                "campaign", "run",
                "--spec", "benchmarks/campaigns/smoke.json",
                "--seed", "7", "--parallel", "4", "--json",
            ]
        )
        assert args.command == "campaign"
        assert args.action == "run"
        assert args.spec == "benchmarks/campaigns/smoke.json"
        assert args.seed == 7
        assert args.parallel == 4
        assert args.json is True
        assert args.point is None

    def test_campaign_report_flags(self):
        args = build_parser().parse_args(
            ["campaign", "report", "--snapshot", "snap.json", "--out", "dir"]
        )
        assert args.action == "report"
        assert args.snapshot == "snap.json"
        assert args.out == "dir"

    def test_campaign_requires_action_and_spec(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "run"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "IPDPS 2007" in out

    def test_quickstart(self, capsys):
        assert main(["quickstart", "--duration", "15"]) == 0
        out = capsys.readouterr().out
        assert "ALLS_WELL" in out
        assert "mean heartbeat latency" in out

    def test_bench_micro(self, capsys):
        assert main(["bench", "micro"]) == 0
        out = capsys.readouterr().out
        assert "Sign Trace Message" in out
        assert "24." in out

    def test_bench_hops_small(self, capsys):
        assert main(["bench", "hops", "--hops", "2", "--duration", "15"]) == 0
        out = capsys.readouterr().out
        assert "TCP auth 2 hops" in out

    def test_bench_adaptive(self, capsys):
        assert main(["bench", "adaptive"]) == 0
        out = capsys.readouterr().out
        assert "adaptive" in out and "fixed" in out

    def test_metrics_text(self, capsys):
        assert main(["metrics", "--duration", "15"]) == 0
        out = capsys.readouterr().out
        for family in ("[broker]", "[tracker]", "[transport]", "[crypto]", "[tdn]"):
            assert family in out
        assert "broker.msgs.ingress" in out

    def test_metrics_json(self, capsys):
        import json

        assert main(["metrics", "--duration", "15", "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["counters"]["broker.msgs.ingress"] > 0
        assert snapshot["histograms"]["tracker.trace.latency_ms"]["count"] > 0

    def test_demo_failure(self, capsys):
        assert main(["demo", "failure"]) == 0
        out = capsys.readouterr().out
        assert "FAILED" in out

    def test_demo_secure(self, capsys):
        assert main(["demo", "secure"]) == 0
        out = capsys.readouterr().out
        assert "trace key distributed: True" in out

    def test_demo_availability(self, capsys):
        assert main(["demo", "availability"]) == 0
        out = capsys.readouterr().out
        assert "uptime" in out
        assert "svc" in out

    def test_faults_text(self, capsys):
        assert main(["faults", "--scenario", "entity-churn", "--duration", "30000"]) == 0
        out = capsys.readouterr().out
        assert "chaos scenario: entity-churn" in out
        assert "faults injected" in out

    def test_faults_json_matches_run_scenario(self, capsys):
        import json

        from repro.faults import run_scenario

        assert main(["faults", "--scenario", "broker-crash", "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot == run_scenario("broker-crash")

    def test_metrics_diff_renders_table(self, capsys, tmp_path):
        import json

        before = tmp_path / "before.json"
        after = tmp_path / "after.json"
        before.write_text(json.dumps({"counters": {"broker.msgs.delivered": 10}}))
        after.write_text(json.dumps({"counters": {"broker.msgs.delivered": 7}}))
        assert main(["metrics", "--diff", str(before), str(after)]) == 0
        out = capsys.readouterr().out
        assert "broker.msgs.delivered" in out
        assert "-3" in out and "-30.0%" in out

    def test_metrics_diff_json(self, capsys, tmp_path):
        import json

        before = tmp_path / "before.json"
        after = tmp_path / "after.json"
        before.write_text(json.dumps({"counters": {"a.b": 1}}))
        after.write_text(json.dumps({"counters": {"a.b": 2}}))
        assert main(["metrics", "--diff", str(before), str(after), "--json"]) == 0
        diff = json.loads(capsys.readouterr().out)
        assert diff["counters"]["a.b"]["delta"] == 1.0
