"""SLO report queries: timelines, histograms, MTTR sources, renderers."""

from repro.analytics import (
    AnalyticsStore,
    build_report,
    build_timelines,
    render_report_json,
    render_report_markdown,
    render_report_text,
)
from repro.analytics.reports import _percentile


def _store_with_one_outage():
    """svc up at 1s, down 10s-25s, recovered until now=60s."""
    store = AnalyticsStore()
    store.append(1_000.0, "trace.observed", entity="svc", trace_type="JOIN")
    store.append(10_000.0, "trace.observed", entity="svc", trace_type="FAILED")
    store.append(25_000.0, "trace.observed", entity="svc", trace_type="JOIN")
    store.set_meta(scenario="unit", seed=3, now_ms=60_000.0)
    return store


class TestTimelines:
    def test_intervals_and_availability(self):
        store = _store_with_one_outage()
        timelines = build_timelines(store.events(kind="trace.observed"))
        timeline = timelines["svc"]
        assert timeline.up
        assert timeline.down_count == 1
        assert timeline.outage_durations_ms() == [15_000.0]
        # up 1s-10s and 25s-60s out of 1s-60s observed
        assert timeline.uptime_ms(60_000.0) == 44_000.0
        assert timeline.was_up_at(5_000.0, 60_000.0)
        assert not timeline.was_up_at(15_000.0, 60_000.0)

    def test_suspicion_marks_without_closing_the_interval(self):
        store = AnalyticsStore()
        store.append(0.0, "trace.observed", entity="svc", trace_type="JOIN")
        store.append(
            500.0, "trace.observed", entity="svc",
            trace_type="FAILURE_SUSPICION",
        )
        timeline = build_timelines(store.events())["svc"]
        assert timeline.up
        assert timeline.suspect_since_ms == 500.0


class TestBuildReport:
    def test_entity_block_and_histogram(self):
        report = build_report(_store_with_one_outage())
        assert report["now_ms"] == 60_000.0  # from meta, not wall clock
        svc = report["entities"]["svc"]
        assert svc["state"] == "up"
        assert svc["outages"] == 1
        assert svc["mttr_ms"] == 15_000.0
        histogram = report["outage_histogram"]
        assert histogram["total"] == 1
        # 15 000 ms lands in the [15000, 60000) bucket
        assert histogram["counts"][histogram["bounds_ms"].index(60_000.0)] == 1

    def test_mttr_prefers_recovery_evidence_over_interval_gaps(self):
        store = _store_with_one_outage()
        store.append(
            25_000.0, "recovery.completed", entity="svc", value=14_250.0,
            recovery_ms=14_250.0,
        )
        report = build_report(store)
        assert report["mttr"]["source"] == "recovery.completed"
        assert report["mttr"]["mean_ms"] == 14_250.0
        bare = build_report(_store_with_one_outage())
        assert bare["mttr"]["source"] == "intervals"
        assert bare["mttr"]["mean_ms"] == 15_000.0

    def test_broker_attribution(self):
        store = _store_with_one_outage()
        store.append(2_000.0, "session.created", entity="svc", broker="b1")
        store.append(9_000.0, "fault.injected", broker="b1", target="b1")
        store.append(
            11_000.0, "fault.failover", entity="svc",
            from_broker="b1", to_broker="b2",
        )
        store.append(30_000.0, "fault.reverted", broker="b1", target="b1")
        report = build_report(store)
        assert report["brokers"]["b1"] == {
            "faults_injected": 1, "faults_reverted": 1,
            "failovers_out": 1, "failovers_in": 0, "sessions_created": 1,
        }
        assert report["brokers"]["b2"]["failovers_in"] == 1
        assert report["evidence"]["fault.failover"] == 1

    def test_empty_store_reports_cleanly(self):
        report = build_report(AnalyticsStore())
        assert report["entities"] == {}
        assert report["mttr"]["count"] == 0
        text = render_report_text(report)
        assert "(no trace.observed events)" in text


class TestRenderers:
    def test_renderers_are_pure_and_deterministic(self):
        report = build_report(_store_with_one_outage())
        for renderer in (
            render_report_text, render_report_markdown, render_report_json
        ):
            assert renderer(report) == renderer(report)

    def test_text_surfaces_the_headline_numbers(self):
        text = render_report_text(build_report(_store_with_one_outage()))
        assert "scenario=unit" in text
        assert "svc" in text
        assert "evidence: trace.observed=3" in text

    def test_markdown_carries_the_regeneration_footer(self):
        markdown = render_report_markdown(build_report(_store_with_one_outage()))
        assert "do not edit by hand" in markdown
        assert "repro analytics report" in markdown
        assert "## Evidence inventory" in markdown


class TestPercentile:
    def test_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert _percentile(values, 0.0) == 10.0
        assert _percentile(values, 0.5) == 30.0  # round(0.5*3)=2
        assert _percentile(values, 1.0) == 40.0
        assert _percentile([7.0], 0.9) == 7.0
