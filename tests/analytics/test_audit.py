"""Unit tests for the audit-completeness validator (rule arithmetic)."""

import pytest

from repro.analytics import (
    DEFAULT_RULES,
    AuditFinding,
    EvidenceRule,
    assert_audit_complete,
    audit_deployment,
)
from repro.errors import AuditIncompleteError
from repro.obs import MetricsRegistry
from repro.obs.journal import EventJournal


class _Monitor:
    def __init__(self, counters=None):
        self._counters = dict(counters or {})

    def count(self, name):
        return self._counters.get(name, 0)


class _Deployment:
    """The attribute surface DEFAULT_RULES reads, nothing more."""

    def __init__(self, monitor_counters=None):
        self.monitor = _Monitor(monitor_counters)
        self.metrics = MetricsRegistry()
        self.journal = EventJournal()


def _rule(evidence_kind="session.created", mutations=1):
    return EvidenceRule(
        name="unit",
        mutation="unit mutation",
        evidence_kind=evidence_kind,
        counted_by="unit counter",
        count=lambda dep: mutations,
    )


class TestAuditFinding:
    def test_balanced(self):
        finding = AuditFinding(rule=_rule(), mutations=2, evidence=2)
        assert finding.complete
        assert "ok: 2 mutation(s)" in finding.describe()

    def test_shortfall_message_names_the_missing_kind(self):
        finding = AuditFinding(rule=_rule(), mutations=3, evidence=1)
        assert not finding.complete
        message = finding.describe()
        assert "2 unit mutation mutation(s)" in message
        assert "'session.created'" in message
        assert "must journal a 'session.created' record" in message

    def test_surplus_also_fails(self):
        finding = AuditFinding(rule=_rule(), mutations=0, evidence=2)
        assert not finding.complete
        assert "surplus" in finding.describe()


class TestAuditDeployment:
    def test_all_default_rules_evaluated(self):
        findings = audit_deployment(_Deployment())
        assert [f.rule.name for f in findings] == [r.name for r in DEFAULT_RULES]
        assert all(f.complete for f in findings)  # all-zero deployment balances

    def test_evidence_counts_come_from_the_journal(self):
        dep = _Deployment(monitor_counters={"trace.sessions_created": 2})
        dep.journal.record(1.0, "session.created", principal="a")
        dep.journal.record(2.0, "session.created", principal="b")
        findings = {f.rule.name: f for f in audit_deployment(dep)}
        assert findings["sessions"].mutations == 2
        assert findings["sessions"].evidence == 2

    def test_journal_kinds_override_audits_a_snapshot(self):
        dep = _Deployment(monitor_counters={"trace.sessions_created": 1})
        findings = audit_deployment(
            dep, journal_kinds={"session.created": 1}
        )
        assert {f.rule.name: f.complete for f in findings}["sessions"]

    def test_metrics_backed_rules(self):
        dep = _Deployment()
        dep.metrics.counter("faults.failovers").inc()
        dep.metrics.counter("faults.injected.broker_crash").inc(2)
        dep.metrics.gauge("faults.active").set(1)
        dep.journal.record(1.0, "fault.failover", principal="svc")
        dep.journal.record(1.0, "fault.injected", principal="b1")
        dep.journal.record(2.0, "fault.injected", principal="b1")
        dep.journal.record(3.0, "fault.reverted", principal="b1")
        findings = {f.rule.name: f for f in audit_deployment(dep)}
        assert findings["failovers"].complete
        assert findings["faults-injected"].mutations == 2
        assert findings["faults-reverted"].mutations == 1  # 2 injected, 1 active
        assert all(
            findings[name].complete
            for name in ("failovers", "faults-injected", "faults-reverted")
        )


class TestAssertAuditComplete:
    def test_returns_findings_when_balanced(self):
        findings = assert_audit_complete(_Deployment())
        assert len(findings) == len(DEFAULT_RULES)

    def test_raises_listing_every_unbalanced_rule(self):
        dep = _Deployment(
            monitor_counters={
                "trace.sessions_created": 1,
                "dos.terminated": 1,
            }
        )
        with pytest.raises(AuditIncompleteError) as excinfo:
            assert_audit_complete(dep)
        message = str(excinfo.value)
        assert "2 rule(s) unbalanced" in message
        assert "'session.created'" in message
        assert "'terminated'" in message
