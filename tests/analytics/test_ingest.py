"""Ingestion feeds: the tracker hook chain and the journal copy."""

from repro.analytics import AnalyticsStore, TraceIngestor, ingest_journal
from repro.obs import MetricsRegistry
from repro.obs.journal import EventJournal
from repro.tracing.tracker import ReceivedTrace
from repro.tracing.traces import TraceType


class _StubTracker:
    """Just the on_trace seam — what TraceIngestor actually touches."""

    def __init__(self, tracker_id="t1"):
        self.tracker_id = tracker_id
        self.on_trace = None


def _trace(entity="svc", at_ms=100.0, latency=7.5, kind=TraceType.ALLS_WELL):
    return ReceivedTrace(
        trace_type=kind, entity_id=entity, received_ms=at_ms,
        latency_ms=latency, payload={},
    )


class TestTraceIngestor:
    def test_traces_become_store_events(self):
        store = AnalyticsStore()
        tracker = _StubTracker()
        TraceIngestor(store, tracker)
        tracker.on_trace(_trace(at_ms=50.0))
        tracker.on_trace(_trace(at_ms=80.0, kind=TraceType.FAILED, latency=None))
        events = store.events(kind="trace.observed")
        assert [e.time_ms for e in events] == [50.0, 80.0]
        assert events[0].value == 7.5
        assert events[0].fields["trace_type"] == TraceType.ALLS_WELL.value
        assert events[0].fields["tracker"] == "t1"

    def test_chains_the_previous_hook(self):
        store = AnalyticsStore()
        tracker = _StubTracker()
        seen = []
        tracker.on_trace = seen.append
        TraceIngestor(store, tracker)
        trace = _trace()
        tracker.on_trace(trace)
        assert seen == [trace]  # archive/forecaster hooks keep firing
        assert store.count() == 1

    def test_ingestion_is_instrumented(self):
        registry = MetricsRegistry()
        store = AnalyticsStore(metrics=registry)
        tracker = _StubTracker()
        TraceIngestor(store, tracker)
        tracker.on_trace(_trace())
        assert registry.counter_value("analytics.ingest.traces") == 1
        assert registry.counter_value("analytics.events.ingested") == 1


class TestJournalIngest:
    def test_column_mapping(self):
        journal = EventJournal()
        journal.record(
            10.0, "session.created", principal="svc", entity="svc",
            broker="b1", session="cafe",
        )
        journal.record(
            20.0, "violation", topic="T/x", principal="attacker",
            size_bytes=64, reason="forged",
        )
        journal.record(
            30.0, "recovery.completed", principal="svc", recovery_ms=1500.0,
        )
        store = AnalyticsStore()
        assert ingest_journal(store, journal) == 3

        session, violation, recovery = store.events()
        assert session.entity == "svc" and session.broker == "b1"
        assert session.fields["session"] == "cafe"
        assert violation.entity == "attacker"  # principal fallback
        assert violation.fields["topic"] == "T/x"
        assert violation.fields["size_bytes"] == 64
        assert recovery.value == 1500.0  # recovery_ms promoted to value

    def test_journal_copy_is_instrumented(self):
        registry = MetricsRegistry()
        store = AnalyticsStore(metrics=registry)
        journal = EventJournal()
        journal.record(1.0, "violation", principal="x")
        journal.record(2.0, "violation", principal="x")
        ingest_journal(store, journal)
        assert registry.counter_value("analytics.ingest.journal_records") == 2
