"""Tier-1 mirror of CI's analytics-smoke step: committed artifacts are
byte-for-byte regenerable, and the run CLI enforces the audit gate."""

import pathlib

from repro.cli import build_parser, main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
ANALYTICS_DIR = REPO_ROOT / "benchmarks" / "results" / "analytics"
SEED_SNAPSHOT = ANALYTICS_DIR / "analytics_seed.json"
SEED_REPORT = ANALYTICS_DIR / "report.md"


class TestParser:
    def test_run_flags(self):
        args = build_parser().parse_args(
            ["analytics", "run", "--scenario", "broker-crash",
             "--backend", "sqlite", "--seed", "7"]
        )
        assert args.command == "analytics"
        assert args.action == "run"
        assert args.backend == "sqlite"
        assert args.seed == 7

    def test_report_flags(self):
        args = build_parser().parse_args(
            ["analytics", "report", "--snapshot", "x.json",
             "--format", "markdown"]
        )
        assert args.action == "report"
        assert args.format == "markdown"


class TestSeedMirror:
    def test_run_reproduces_committed_seed_snapshot(self, tmp_path, capsys):
        out = tmp_path / "analytics_seed.json"
        code = main(
            ["analytics", "run", "--scenario", "broker-crash",
             "--out", str(out)]
        )
        capsys.readouterr()
        assert code == 0
        assert out.read_bytes() == SEED_SNAPSHOT.read_bytes()

    def test_report_reproduces_committed_markdown(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main(
            ["analytics", "report", "--snapshot", str(SEED_SNAPSHOT),
             "--format", "markdown", "--out", str(out)]
        )
        capsys.readouterr()
        assert code == 0
        assert out.read_bytes() == SEED_REPORT.read_bytes()

    def test_sqlite_backend_produces_the_identical_snapshot(
        self, tmp_path, capsys
    ):
        out = tmp_path / "sqlite_seed.json"
        code = main(
            ["analytics", "run", "--scenario", "broker-crash",
             "--backend", "sqlite", "--db", str(tmp_path / "a.db"),
             "--out", str(out)]
        )
        capsys.readouterr()
        assert code == 0
        assert out.read_bytes() == SEED_SNAPSHOT.read_bytes()

    def test_report_text_format_prints_to_stdout(self, capsys):
        code = main(
            ["analytics", "report", "--snapshot", str(SEED_SNAPSHOT)]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "availability report" in captured.out
        assert "evidence:" in captured.out
