"""The audit gate over the real mutation surface.

Two directions, both required by docs/ANALYTICS.md:

* every chaos scenario and every campaign-smoke point must audit clean —
  no state mutation without journal evidence;
* the gate must *trip* when an evidence write is suppressed, with a
  message naming the missing kind (a gate that cannot fail gates
  nothing).
"""

import pathlib

import pytest

from repro import build_deployment
from repro.analytics import DEFAULT_RULES, AnalyticsStore, assert_audit_complete
from repro.campaigns import expand, load_spec, observe_deployments, run_campaign
from repro.errors import AuditIncompleteError
from repro.faults import SCENARIOS, run_scenario
from repro.obs.journal import EventJournal

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SMOKE_SPEC = REPO_ROOT / "benchmarks" / "campaigns" / "smoke.json"


class TestChaosScenariosAuditClean:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_scenario_audits_complete(self, scenario):
        audited = []

        def probe(dep):
            findings = assert_audit_complete(dep)
            audited.append(len(findings))

        store = AnalyticsStore()
        run_scenario(scenario, analytics_store=store, deployment_probe=probe)
        assert audited == [len(DEFAULT_RULES)]
        assert store.count() > 0  # the evidence reached the persistent tier

    def test_snapshot_evidence_matches_live_journal(self):
        captured = {}

        def probe(dep):
            captured["journal_kinds"] = dep.journal.kinds()
            assert_audit_complete(dep)

        store = AnalyticsStore()
        run_scenario(
            "broker-crash", analytics_store=store, deployment_probe=probe
        )
        persisted = store.kinds()
        for kind, count in captured["journal_kinds"].items():
            assert persisted.get(kind) == count, (
                f"journal kind {kind!r} did not survive ingestion"
            )


class TestCampaignSmokeAuditsClean:
    def test_every_tracing_point_audits_complete(self):
        audited = []

        def probe(dep):
            assert_audit_complete(dep)
            audited.append(dep)

        spec = load_spec(SMOKE_SPEC)
        with observe_deployments(probe):
            run_campaign(spec, seed=42)
        # every non-baseline point builds (at least) one deployment
        workload_points = sum(
            1 for point in expand(spec, seed=42) if point.kind != "baseline"
        )
        assert workload_points > 0
        assert len(audited) >= workload_points


class TestGateTripsOnSuppressedEvidence:
    """Satellite contract: suppress one journal write, fail actionably."""

    @pytest.fixture()
    def suppressed_session_evidence(self, monkeypatch):
        original = EventJournal.record

        def record(self, time_ms, kind, **kwargs):
            if kind == "session.created":
                return None  # a mutation path "forgot" its evidence write
            return original(self, time_ms, kind, **kwargs)

        monkeypatch.setattr(EventJournal, "record", record)

    def test_fails_naming_the_missing_kind(self, suppressed_session_evidence):
        dep = build_deployment(broker_ids=["b1", "b2"], seed=5)
        entity = dep.add_traced_entity("svc")
        entity.start("b1")
        dep.sim.run(until=5_000)

        with pytest.raises(AuditIncompleteError) as excinfo:
            assert_audit_complete(dep)
        message = str(excinfo.value)
        assert "session.created" in message
        assert "trace.sessions_created" in message  # points at the counter
        assert "must journal a 'session.created' record" in message

    def test_same_deployment_passes_without_suppression(self):
        dep = build_deployment(broker_ids=["b1", "b2"], seed=5)
        entity = dep.add_traced_entity("svc")
        entity.start("b1")
        dep.sim.run(until=5_000)
        assert_audit_complete(dep)
