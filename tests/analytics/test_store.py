"""AnalyticsStore: append/query façade, metrics binding, snapshot I/O."""

import pytest

from repro.analytics import AnalyticsStore, SqliteBackend
from repro.errors import AnalyticsError
from repro.obs import MetricsRegistry


def _populate(store):
    store.append(100.0, "trace.observed", entity="svc", trace_type="JOIN")
    store.append(250.0, "trace.observed", entity="svc", value=9.5,
                 trace_type="FAILED")
    store.append(300.0, "session.created", entity="svc", broker="b1")
    store.set_meta(scenario="unit", seed=7, now_ms=400.0)
    return store


class TestStoreBasics:
    def test_default_backend_is_memory(self):
        assert AnalyticsStore().backend.name == "memory"

    def test_backend_by_name_with_kwargs(self, tmp_path):
        store = AnalyticsStore("sqlite", path=str(tmp_path / "a.db"))
        assert store.backend.name == "sqlite"
        store.close()

    def test_backend_kwargs_without_name_rejected(self):
        with pytest.raises(AnalyticsError, match="backend \\*name\\*"):
            AnalyticsStore(SqliteBackend(), path="nope")

    def test_summary(self):
        store = _populate(AnalyticsStore())
        assert store.summary() == {
            "backend": "memory",
            "events": 3,
            "kinds": {"trace.observed": 2, "session.created": 1},
        }

    def test_append_counts_into_bound_registry(self):
        registry = MetricsRegistry()
        store = AnalyticsStore(metrics=registry)
        _populate(store)
        assert registry.counter_value("analytics.events.ingested") == 3
        assert registry.gauge_value("analytics.store.events") == 3

    def test_bind_metrics_after_construction(self):
        registry = MetricsRegistry()
        store = AnalyticsStore()
        store.append(1.0, "k")
        store.bind_metrics(registry)
        store.append(2.0, "k")
        assert registry.counter_value("analytics.events.ingested") == 1
        assert store.count() == 2


class TestSnapshotRoundTrip:
    def test_export_load_is_lossless(self, tmp_path):
        store = _populate(AnalyticsStore())
        path = store.save(tmp_path / "snap.json")
        loaded = AnalyticsStore.load(path)
        assert loaded.meta == store.meta
        assert [e.to_dict() for e in loaded.events()] == [
            e.to_dict() for e in store.events()
        ]

    def test_export_is_deterministic(self):
        assert (
            _populate(AnalyticsStore()).export_json()
            == _populate(AnalyticsStore()).export_json()
        )

    def test_round_trip_into_sqlite_backend(self, tmp_path):
        store = _populate(AnalyticsStore())
        path = store.save(tmp_path / "snap.json")
        loaded = AnalyticsStore.load(path, backend="sqlite")
        assert loaded.backend.name == "sqlite"
        assert loaded.export_json() == store.export_json()
        loaded.close()

    def test_invalid_snapshot_rejected(self):
        with pytest.raises(AnalyticsError, match="invalid analytics snapshot"):
            AnalyticsStore.from_json("not json at all {")
        with pytest.raises(AnalyticsError, match="'events' array"):
            AnalyticsStore.from_json('{"meta": {}}')
