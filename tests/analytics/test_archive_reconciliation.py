"""The archive/forecaster are views over the store — and change nothing.

The availability archive and network forecaster predate the analytics
store; reconciling them onto it (docs/ANALYTICS.md) must not perturb any
behaviour the seeds pin.  Three regressions:

* the routing smoke scenario still reproduces its committed seed exactly
  (the tracker hook seam the ingestor chains is on that path);
* a deployment with archive + forecaster attached produces the same
  registry snapshot as a bare one (the views add zero drift);
* the archive's records equal timelines built directly from the
  persisted events (the view genuinely derives from the store).
"""

import json
import pathlib

from repro import build_deployment
from repro.analytics import AnalyticsStore, build_timelines
from repro.bench.routing_smoke import compare_to_seed, run_routing_smoke
from repro.messaging.message import reset_message_ids
from repro.tracing.archive import AvailabilityArchive, EntityRecord
from repro.tracing.failure import AdaptivePingPolicy
from repro.tracing.forecast import NetworkForecaster

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
ROUTING_SEED = REPO_ROOT / "benchmarks" / "results" / "routing_seed.json"


def test_routing_smoke_still_matches_committed_seed():
    live = run_routing_smoke(seed=42)
    seed = json.loads(ROUTING_SEED.read_text())
    findings = compare_to_seed(live, seed)
    assert not findings, "routing drift after archive reconciliation:\n" + (
        "\n".join(findings)
    )


def _run_once(attach_views):
    # message ids ride on the wire; rewind the process-global counter so
    # back-to-back runs are comparable (same discipline as run_scenario)
    reset_message_ids()
    dep = build_deployment(
        broker_ids=["b1", "b2"],
        seed=11,
        ping_policy=AdaptivePingPolicy(
            base_interval_ms=1_000.0, min_interval_ms=250.0,
            max_interval_ms=2_000.0, response_deadline_ms=300.0,
        ),
    )
    entity = dep.add_traced_entity("svc")
    tracker = dep.add_tracker("watcher")
    tracker.connect("b2")
    store = None
    archive = forecaster = None
    if attach_views:
        store = AnalyticsStore()
        archive = AvailabilityArchive(tracker, store=store)
        forecaster = NetworkForecaster(tracker, store=store)
    entity.start("b1")
    dep.sim.run(until=3_000)
    tracker.track("svc")
    dep.sim.run(until=20_000)
    entity.crash()
    dep.sim.run(until=30_000)
    dep.sim.process(entity.reregister())
    dep.sim.run(until=45_000)
    return dep, store, archive, forecaster


class TestZeroDrift:
    def test_attached_views_do_not_change_the_run(self):
        bare, *_ = _run_once(attach_views=False)
        viewed, _, _, _ = _run_once(attach_views=True)
        bare_snapshot = bare.metrics.snapshot()
        viewed_snapshot = viewed.metrics.snapshot()
        # the views add analytics.* instruments; everything else is equal
        viewed_snapshot["counters"] = {
            name: value
            for name, value in viewed_snapshot["counters"].items()
            if not name.startswith("analytics.")
        }
        viewed_snapshot["gauges"] = {
            name: value
            for name, value in viewed_snapshot["gauges"].items()
            if not name.startswith("analytics.")
        }
        assert viewed_snapshot == bare_snapshot
        assert viewed.monitor.counters() == bare.monitor.counters()


class TestStoreBackedArchive:
    def test_records_equal_timelines_from_the_store(self):
        _, store, archive, _ = _run_once(attach_views=True)
        timelines = build_timelines(store.events(kind="trace.observed"))
        assert set(archive.records) == set(timelines)
        for entity_id, timeline in timelines.items():
            record = archive.record_of(entity_id)
            assert record.intervals == timeline.intervals
            assert record.down_count == timeline.down_count

    def test_entity_record_shim_still_observes(self):
        """The deprecation shim: EntityRecord.observe(trace) keeps working."""
        _, _, archive, _ = _run_once(attach_views=True)
        record = archive.record_of("svc")
        assert isinstance(record, EntityRecord)
        assert record.down_count >= 1  # the crash produced an outage

    def test_forecaster_persists_network_metrics(self):
        _, store, _, forecaster = _run_once(attach_views=True)
        samples = store.events(kind="network.metrics")
        assert samples, "no NETWORK_METRICS samples persisted"
        assert all(e.entity == "svc" for e in samples)
        assert forecaster.forecast_rtt_ms("svc") is not None
