"""The storage seam: both built-in backends answer every query identically."""

import pytest

from repro.analytics import (
    AnalyticsEvent,
    MemoryBackend,
    SqliteBackend,
    backend_names,
    create_backend,
    ingest_events,
    register_backend,
)
from repro.errors import AnalyticsError, ConfigurationError

#: A small but shape-covering log: duplicate kinds, shared timestamps,
#: null entities/values, nested fields.
EVENTS = [
    (100.0, "trace.observed", "svc-a", "b1", 12.5, {"trace_type": "JOIN"}),
    (200.0, "trace.observed", "svc-b", "b1", None, {"trace_type": "READY"}),
    (200.0, "session.created", "svc-a", "b1", None, {"session": "deadbeef"}),
    (350.0, "trace.observed", "svc-a", "b2", 9.0, {"trace_type": "FAILED"}),
    (400.0, "fault.injected", None, "b1", None, {"target": "b1", "kind": "crash"}),
    (500.0, "recovery.completed", "svc-a", None, 150.0, {"recovery_ms": 150.0}),
]

#: Every filter combination the query contract supports.
QUERIES = [
    {},
    {"kind": "trace.observed"},
    {"kind": "no.such.kind"},
    {"entity": "svc-a"},
    {"entity": "svc-a", "kind": "trace.observed"},
    {"since_ms": 200.0},
    {"until_ms": 200.0},
    {"since_ms": 200.0, "until_ms": 400.0},
    {"kind": "trace.observed", "since_ms": 150.0, "until_ms": 360.0},
]


def _fill(backend):
    for time_ms, kind, entity, broker, value, fields in EVENTS:
        backend.append(
            time_ms, kind, entity=entity, broker=broker, value=value, fields=fields
        )
    return backend


@pytest.fixture(params=["memory", "sqlite"])
def backend(request):
    instance = create_backend(request.param)
    yield _fill(instance)
    instance.close()


class TestQueryContract:
    def test_seq_is_one_based_append_order(self, backend):
        assert [e.seq for e in backend.events()] == list(
            range(1, len(EVENTS) + 1)
        )

    def test_count_kinds_entities(self, backend):
        assert backend.count() == len(EVENTS)
        assert backend.kinds()["trace.observed"] == 3
        assert backend.entities() == ["svc-a", "svc-b"]

    def test_until_is_exclusive_since_inclusive(self, backend):
        window = backend.events(since_ms=200.0, until_ms=350.0)
        assert {e.time_ms for e in window} == {200.0}

    def test_fields_round_trip(self, backend):
        [injected] = backend.events(kind="fault.injected")
        assert injected.fields == {"target": "b1", "kind": "crash"}


class TestBackendEquivalence:
    """The docs/ANALYTICS.md promise: identical results for the same log."""

    def test_every_query_matches_across_backends(self):
        memory = _fill(MemoryBackend())
        sqlite = _fill(SqliteBackend())
        for query in QUERIES:
            assert [e.to_dict() for e in memory.events(**query)] == [
                e.to_dict() for e in sqlite.events(**query)
            ], f"backends disagree on {query!r}"
        assert memory.kinds() == sqlite.kinds()
        assert memory.entities() == sqlite.entities()
        assert memory.count() == sqlite.count()
        sqlite.close()

    def test_ingest_events_replays_a_log_exactly(self):
        source = _fill(MemoryBackend())
        target = SqliteBackend()
        assert ingest_events(target, source.events()) == len(EVENTS)
        assert [e.to_dict() for e in target.events()] == [
            e.to_dict() for e in source.events()
        ]
        target.close()


class TestRegistry:
    def test_builtins_registered(self):
        assert backend_names() == ["memory", "sqlite"]

    def test_unknown_backend_names_the_registry(self):
        with pytest.raises(AnalyticsError, match="memory, sqlite"):
            create_backend("mongodb")

    def test_register_backend_rejects_bad_names(self):
        with pytest.raises(ConfigurationError):
            register_backend("NotLower", MemoryBackend)

    def test_sqlite_persists_across_connections(self, tmp_path):
        path = str(tmp_path / "analytics.db")
        first = _fill(SqliteBackend(path=path))
        first.close()
        second = SqliteBackend(path=path)
        assert second.count() == len(EVENTS)
        assert second.kinds() == _fill(MemoryBackend()).kinds()
        second.close()


class TestEventModel:
    def test_event_dict_round_trip(self):
        event = AnalyticsEvent(
            seq=7, time_ms=12.0, kind="k", entity="e", broker="b",
            value=1.5, fields={"x": 1},
        )
        assert AnalyticsEvent.from_dict(event.to_dict()) == event
