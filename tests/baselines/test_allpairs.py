"""Tests for the all-pairs heartbeat baseline."""

import pytest

from repro.baselines.allpairs import AllPairsHeartbeatSystem, allpairs_message_rate
from repro.sim.engine import Simulator
from repro.transport.udp import udp_profile


class TestMessageRate:
    def test_paper_formula(self):
        """N x (N-1) messages per second (section 1)."""
        assert allpairs_message_rate(10) == 90
        assert allpairs_message_rate(100) == 9_900
        assert allpairs_message_rate(2) == 2

    def test_scales_with_frequency(self):
        assert allpairs_message_rate(10, heartbeats_per_second=2.0) == 180

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            allpairs_message_rate(-1)


class TestSimulatedSystem:
    def make(self, n=5, **kwargs):
        sim = Simulator()
        system = AllPairsHeartbeatSystem(sim, n, seed=1, **kwargs)
        system.start()
        return sim, system

    def test_message_count_matches_formula(self):
        sim, system = self.make(n=6)
        sim.run(until=10_000)
        # 11 heartbeat rounds (t=0, 1000, ..., 10000 inclusive) of 6*5 msgs
        assert system.messages_sent == 11 * 30

    def test_no_false_failures_when_healthy(self):
        sim, system = self.make(n=4)
        sim.run(until=30_000)
        assert system.monitor.count("allpairs.detections") == 0

    def test_crash_detected_by_all_peers(self):
        sim, system = self.make(n=5)
        sim.run(until=5_000)
        system.crash(2)
        sim.run(until=30_000)
        times = system.detection_times_for(2)
        assert len(times) == 4  # every live peer detects
        assert all(t > 5_000 for t in times)
        assert all(system.believes_failed(i, 2) for i in range(5) if i != 2)

    def test_crashed_entity_stops_sending(self):
        sim, system = self.make(n=3)
        sim.run(until=2_500)
        sent_before = system.messages_sent
        system.crash(0)
        system.crash(1)
        system.crash(2)
        sim.run(until=30_000)
        # at most one more round per entity after the crash flag
        assert system.messages_sent <= sent_before + 6

    def test_lossy_network_tolerated(self):
        sim = Simulator()
        system = AllPairsHeartbeatSystem(
            sim, 4, seed=2, profile=udp_profile(loss_probability=0.2)
        )
        system.start()
        sim.run(until=30_000)
        # occasional losses within the timeout window cause no detections
        assert system.monitor.count("allpairs.detections") == 0

    def test_requires_two_entities(self):
        with pytest.raises(ValueError):
            AllPairsHeartbeatSystem(Simulator(), 1)
