"""Tests for the gossip failure-detection baseline."""

import pytest

from repro.baselines.gossip import GossipFailureDetector
from repro.sim.engine import Simulator


def make(n=8, **kwargs):
    sim = Simulator()
    detector = GossipFailureDetector(sim, n, seed=3, **kwargs)
    detector.start()
    return sim, detector


class TestGossipPropagation:
    def test_counters_spread_to_all_nodes(self):
        sim, detector = make(n=6)
        sim.run(until=20_000)
        # every node has learned a non-zero counter for every peer
        for node in detector.nodes:
            for peer in range(6):
                if peer != node.node_id:
                    assert node.table[peer].counter > 0

    def test_no_false_suspicion_when_healthy(self):
        sim, detector = make(n=6)
        sim.run(until=60_000)
        assert detector.monitor.count("gossip.detections") == 0

    def test_message_load_linear_in_fanout(self):
        sim1, d1 = make(n=10, fanout=1)
        sim1.run(until=10_000)
        sim2, d2 = make(n=10, fanout=3)
        sim2.run(until=10_000)
        assert d2.messages_sent == pytest.approx(3 * d1.messages_sent, rel=0.01)


class TestGossipDetection:
    def test_crash_eventually_suspected_by_all(self):
        sim, detector = make(n=8)
        sim.run(until=10_000)
        detector.crash(3)
        sim.run(until=120_000)
        assert detector.all_live_nodes_suspect(3)

    def test_detection_spread_nonzero(self):
        """Gossip's uneven propagation: nodes detect at different times."""
        sim, detector = make(n=12, fanout=1)
        sim.run(until=10_000)
        detector.crash(0)
        sim.run(until=200_000)
        times = detector.detection_times_for(0)
        assert len(times) == 11
        assert detector.detection_spread_ms(0) > 0.0

    def test_recovered_counter_clears_suspicion(self):
        sim, detector = make(n=4, fail_timeout_ms=3_000.0)
        sim.run(until=5_000)
        # manually simulate a stale entry then a fresh counter arriving
        node = detector.nodes[0]
        node.table[2].suspected = True
        node.merge({2: node.table[2].counter + 5}, sim.now)
        assert not node.suspects(2)


class TestValidation:
    def test_node_count(self):
        with pytest.raises(ValueError):
            GossipFailureDetector(Simulator(), 1)

    def test_fanout_bounds(self):
        with pytest.raises(ValueError):
            GossipFailureDetector(Simulator(), 4, fanout=0)
        with pytest.raises(ValueError):
            GossipFailureDetector(Simulator(), 4, fanout=4)
