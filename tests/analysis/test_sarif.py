"""SARIF output: 2.1.0 structural contract GitHub code scanning ingests.

The full OASIS schema is not vendored; instead a JSON Schema subset
covering every property the upload path touches (version, driver, rules,
results, physical locations) is embedded here and enforced with
``jsonschema`` — same validation machinery, offline.
"""

import json

import jsonschema

from repro.analysis.base import Finding
from repro.analysis.rules import default_checkers
from repro.analysis.sarif import SARIF_VERSION, format_sarif, to_sarif

#: Subset of sarif-schema-2.1.0.json: required properties + types for the
#: parts of a log file ``upload-sarif`` consumes.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string", "format": "uri"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "columnKind": {
                        "enum": ["utf16CodeUnits", "unicodeCodePoints"]
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {"type": "integer", "minimum": 0},
                                "level": {
                                    "enum": ["none", "note", "warning", "error"]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "required": ["artifactLocation"],
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "required": ["uri"],
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            }
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def sample_findings():
    return [
        Finding(
            rule="WIRE01",
            severity="error",
            path="/root/repo/src/repro/security/keydist.py",
            line=33,
            message="message kind 'key_distribution' is produced here",
            hint="update the dispatchers",
        ),
        Finding(
            rule="CRY02",
            severity="warning",
            path="src/repro/tracing/entity.py",
            line=7,
            message="key material flows",
        ),
    ]


class TestSarifStructure:
    def test_validates_against_embedded_subset_schema(self):
        doc = to_sarif(sample_findings(), default_checkers())
        jsonschema.validate(doc, SARIF_SUBSET_SCHEMA)

    def test_empty_run_validates_too(self):
        jsonschema.validate(to_sarif([], default_checkers()), SARIF_SUBSET_SCHEMA)

    def test_version_and_driver(self):
        doc = to_sarif([], default_checkers())
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-analyze"
        assert [r["id"] for r in driver["rules"]] == [
            c.rule for c in default_checkers()
        ]

    def test_results_carry_location_and_level(self):
        doc = to_sarif(sample_findings(), default_checkers())
        wire, cry = doc["runs"][0]["results"]
        assert wire["ruleId"] == "WIRE01" and wire["level"] == "error"
        location = wire["locations"][0]["physicalLocation"]
        # absolute path normalized to repo-relative for %SRCROOT% anchoring
        assert location["artifactLocation"]["uri"] == "src/repro/security/keydist.py"
        assert location["region"]["startLine"] == 33
        assert "(hint: update the dispatchers)" in wire["message"]["text"]
        assert cry["level"] == "warning"

    def test_rule_index_points_into_rules_array(self):
        doc = to_sarif(sample_findings(), default_checkers())
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        for result in doc["runs"][0]["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_format_sarif_is_stable_json(self):
        text = format_sarif(sample_findings(), default_checkers())
        assert json.loads(text)["version"] == "2.1.0"
        assert text == format_sarif(sample_findings(), default_checkers())
