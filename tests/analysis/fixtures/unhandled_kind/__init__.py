"""WIRE01 fixture: a produced message kind with no dispatch arm anywhere."""
