"""Builds two kinds; only one of them has a handler in handler.py."""

SHUTDOWN_KIND = "shutdown_notice"


def build_shutdown(entity_id):
    return {"kind": SHUTDOWN_KIND, "entity": entity_id}


def build_ping(nonce):
    return {"kind": "ping", "nonce": nonce}
