"""Dispatches ping only — shutdown_notice messages are silently dropped."""


def handle(body):
    kind = body.get("kind")
    if kind == "ping":
        return {"ok": True, "nonce": body.get("nonce")}
    return None
