"""Same shapes as the keyleak fixture, with a sanitizer on every path."""

from repro.crypto.digest import sha1_digest
from repro.crypto.keys import SymmetricKey


def fingerprint(key_obj):
    return sha1_digest(key_obj.material)


def announce(broker, rng):
    session_key = SymmetricKey(rng.randbytes(16))
    broker.publish("keys/new", {"kid": fingerprint(session_key)})


def audit(journal, rng):
    session_key = SymmetricKey(rng.randbytes(16))
    journal.record("keydist", kid=session_key.fingerprint(), bits=len(session_key.material))
