"""CRY02 negative fixture: only digests/fingerprints leave the process."""
