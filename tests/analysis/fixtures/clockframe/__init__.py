"""DET03 fixture: a wall-clock value reaching encoded wire bytes."""
