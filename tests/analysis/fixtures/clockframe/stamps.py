"""The clock read lives here; DET01 flags the read itself on this line."""

import time


def stamp():
    return time.time()
