"""The flow DET03 catches: stamp() -> frame body -> codec.encode()."""

from clockframe.stamps import stamp


def frame(codec, body):
    stamped = dict(body, ts=stamp())
    return codec.encode(stamped)


def safe_frame(codec, body, clock):
    stamped = dict(body, ts=clock.now())
    return codec.encode(stamped)
