"""Leaks the minted key: directly onto the wire, and via the one-hop helper."""

from keyleak.emitter import record_handshake
from keyleak.kdc import new_session_key


def announce(broker, rng):
    session_key = new_session_key(rng)
    broker.publish("keys/new", {"material": session_key})


def handshake(journal, rng):
    session_key = new_session_key(rng)
    record_handshake(journal, session_key)
