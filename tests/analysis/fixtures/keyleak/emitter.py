"""A helper whose parameter reaches a journal sink (one-hop sink_params)."""


def record_handshake(journal, material):
    journal.record("handshake", material=material)
