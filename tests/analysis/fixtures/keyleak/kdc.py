"""Mints session keys — the taint source lives here, one module away."""

from repro.crypto.keys import SymmetricKey


def new_session_key(rng):
    return SymmetricKey(rng.randbytes(16))
