"""CRY02 fixture: key material crossing module boundaries before leaking."""
