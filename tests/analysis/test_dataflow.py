"""The taint engine: propagation, sanitizers, summaries, loop carry."""

import ast

from repro.analysis.base import FileContext
from repro.analysis.dataflow import (
    SummaryTable,
    TaintSpec,
    TaintTracker,
    tainted_labels,
)
from repro.analysis.project import ProjectIndex


def toy_spec():
    """Sources: ``taint()`` calls and names starting with ``secret``;
    sanitizer: ``clean()``; metadata attr ``size`` stops propagation."""
    return TaintSpec(
        source_call=lambda origin, node: (
            "taint" if origin and origin.endswith("taint") else None
        ),
        source_expr=lambda node: (
            node.id
            if isinstance(node, ast.Name) and node.id.startswith("secret")
            else None
        ),
        sanitizer=lambda origin, node: bool(origin) and origin.endswith("clean"),
        propagate_access=lambda part, label: None if part == "size" else label,
    )


def tracker_for(source, **kwargs):
    ctx = FileContext("toy.py", source)
    fn = ctx.tree.body[-1]
    return TaintTracker(ctx, toy_spec(), **kwargs), fn


def sink_lines(source, **kwargs):
    """Lines of ``emit(...)`` calls that receive tainted arguments."""
    tracker, fn = tracker_for(source, **kwargs)
    hits = []

    def visitor(node, taint_of):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "emit"
            and list(tainted_labels(node, taint_of))
        ):
            hits.append(node.lineno)

    tracker.run(fn, visitor)
    return hits


class TestPropagation:
    def test_assignment_chain(self):
        assert sink_lines("def f():\n    a = taint()\n    b = a\n    emit(b)\n") == [4]

    def test_reassignment_clears(self):
        source = "def f():\n    a = taint()\n    a = 1\n    emit(a)\n"
        assert sink_lines(source) == []

    def test_sanitizer_stops_flow(self):
        source = "def f():\n    a = taint()\n    b = clean(a)\n    emit(b)\n"
        assert sink_lines(source) == []

    def test_metadata_access_stops_flow(self):
        source = "def f():\n    a = taint()\n    emit(a.size)\n"
        assert sink_lines(source) == []

    def test_other_access_keeps_flow(self):
        source = "def f():\n    a = taint()\n    emit(a.material)\n"
        assert sink_lines(source) == [3]

    def test_call_args_propagate(self):
        source = "def f():\n    a = taint()\n    emit(int(a))\n"
        assert sink_lines(source) == [3]

    def test_containers_and_fstrings(self):
        assert sink_lines("def f():\n    a = taint()\n    emit([a])\n") == [3]
        assert sink_lines('def f():\n    a = taint()\n    emit(f"x={a}")\n') == [3]

    def test_tuple_unpacking_is_elementwise(self):
        source = "def f():\n    a, b = taint(), 1\n    emit(b)\n    emit(a)\n"
        assert sink_lines(source) == [4]

    def test_loop_carried_taint_reaches_sink(self):
        source = (
            "def f(items):\n"
            "    a = 1\n"
            "    for _ in items:\n"
            "        emit(a)\n"
            "        a = taint()\n"
        )
        # second traversal of the loop body sees the carried assignment
        assert sink_lines(source) == [4]

    def test_source_expr_names(self):
        assert sink_lines("def f(secret_key):\n    emit(secret_key)\n") == [2]


class TestReturnedTaint:
    def test_direct_and_via_assignment(self):
        tracker, fn = tracker_for("def f():\n    a = taint()\n    return a\n")
        tracker.run(fn)
        assert tracker.returned_taint(fn) == "taint"

    def test_clean_return(self):
        tracker, fn = tracker_for("def f():\n    return 1\n")
        tracker.run(fn)
        assert tracker.returned_taint(fn) is None


class TestSummaryTable:
    def build(self, source, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(source)
        index = ProjectIndex()
        info = index.add(FileContext(str(target), source))

        def probe(tracker, node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "emit"
            ):
                return "the emit sink"
            return None

        return index, info, SummaryTable(index, toy_spec(), sink_probe=probe)

    def test_returns_taint_summary(self, tmp_path):
        index, info, table = self.build("def make():\n    return taint()\n", tmp_path)
        call = ast.parse("make()", mode="eval").body
        assert index.resolve_call(info, call) is not None
        assert table.lookup(info, call, None).returns_taint == "taint"

    def test_sink_params_summary(self, tmp_path):
        source = "def dump(journal, material):\n    emit(material)\n"
        _index, info, table = self.build(source, tmp_path)
        call = ast.parse("dump(j, m)", mode="eval").body
        summary = table.lookup(info, call, None)
        assert summary.sink_params == {"material": "the emit sink"}

    def test_one_hop_taint_through_helper(self, tmp_path):
        source = (
            "def make():\n"
            "    return taint()\n"
            "def use():\n"
            "    v = make()\n"
            "    emit(v)\n"
        )
        _index, info, table = self.build(source, tmp_path)
        use = info.functions["use"]
        tracker = TaintTracker(
            info.ctx, toy_spec(), resolve_summary=lambda c: table.lookup(info, c, None)
        )
        hits = []

        def visitor(node, taint_of):
            if isinstance(node, ast.Call) and list(tainted_labels(node, taint_of)):
                hits.append(node.lineno)

        tracker.run(use, visitor)
        assert 5 in hits
