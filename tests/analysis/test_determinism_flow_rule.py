"""DET03 — clock/RNG values flowing into ids, seeds, and wire frames."""

from pathlib import Path

from repro.analysis import analyze_paths
from repro.analysis.runner import select_checkers

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def det03(path):
    return analyze_paths([path], select_checkers(["DET03"]))


def write_pkg(tmp_path, source, name="mod.py"):
    pkg = tmp_path / "pkg"
    pkg.mkdir(exist_ok=True)
    (pkg / "__init__.py").write_text("")
    (pkg / name).write_text(source)
    return pkg


class TestClockframeFixture:
    def test_one_hop_clock_flow_into_encode(self):
        findings = det03(FIXTURES / "clockframe")
        assert len(findings) == 1
        (finding,) = findings
        assert finding.path.endswith("framer.py")
        assert finding.line == 8
        assert (
            finding.message
            == "nondeterministic value from time.time() flows into a .encode() wire frame"
        )

    def test_sim_clock_path_is_clean(self):
        # safe_frame in the same fixture uses clock.now() — no finding there
        assert all(f.line != 13 for f in det03(FIXTURES / "clockframe"))


class TestSinkVocabulary:
    def test_seed_keyword_sink(self, tmp_path):
        pkg = write_pkg(
            tmp_path,
            "import time\n\n\ndef f(streams):\n    streams.reset(seed=time.time())\n",
        )
        assert len(det03(pkg)) == 1

    def test_message_id_keyword_sink(self, tmp_path):
        pkg = write_pkg(
            tmp_path,
            "import random\n\n\ndef f(make):\n    return make(message_id=random.randrange(9))\n",
        )
        (finding,) = det03(pkg)
        assert "random.randrange" in finding.message

    def test_seeded_random_is_deterministic(self, tmp_path):
        pkg = write_pkg(
            tmp_path,
            "import random\n\n\ndef f(codec):\n"
            "    rng = random.Random(7)\n"
            "    return codec.encode({'n': rng.random()})\n",
        )
        assert det03(pkg) == []

    def test_unseeded_random_taints(self, tmp_path):
        pkg = write_pkg(
            tmp_path,
            "import random\n\n\ndef f(codec):\n"
            "    rng = random.Random()\n"
            "    return codec.encode({'n': rng.random()})\n",
        )
        assert len(det03(pkg)) == 1

    def test_len_sanitizes(self, tmp_path):
        pkg = write_pkg(
            tmp_path,
            "import time\n\n\ndef f(codec):\n"
            "    stamp = str(time.time())\n"
            "    return codec.encode({'n': len(stamp)})\n",
        )
        assert det03(pkg) == []

    def test_runtime_package_is_exempt(self, tmp_path):
        root = tmp_path / "src" / "repro" / "runtime"
        root.mkdir(parents=True)
        for d in (tmp_path / "src" / "repro", root):
            (d / "__init__.py").write_text("")
        (root / "bridge.py").write_text(
            "import time\n\n\ndef f(codec):\n    return codec.encode(time.time())\n"
        )
        assert det03(tmp_path / "src") == []
