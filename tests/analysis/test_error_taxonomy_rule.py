"""ERR01 — raise ReproError subclasses, not builtin exception types."""

from repro.analysis.base import analyze_source
from repro.analysis.rules.error_taxonomy import BuiltinRaiseChecker

UTIL_PATH = "src/repro/util/example.py"


def err01(source, path=UTIL_PATH):
    return analyze_source(source, path, [BuiltinRaiseChecker()])


class TestERR01Fires:
    def test_raise_value_error(self):
        findings = err01("def f(x):\n    raise ValueError(f'bad {x}')\n")
        assert [f.rule for f in findings] == ["ERR01"]
        assert "ValueError" in findings[0].message
        assert "ValidationError" in findings[0].hint

    def test_raise_runtime_error(self):
        findings = err01("def f():\n    raise RuntimeError('nope')\n")
        assert len(findings) == 1

    def test_raise_key_error(self):
        assert len(err01("def f(k):\n    raise KeyError(k)\n")) == 1

    def test_bare_raise_of_builtin_class(self):
        assert len(err01("def f():\n    raise TypeError\n")) == 1

    def test_raise_from_is_still_flagged(self):
        source = (
            "def f(d, k):\n"
            "    try:\n"
            "        return d[k]\n"
            "    except KeyError as exc:\n"
            "        raise ValueError('missing') from exc\n"
        )
        assert len(err01(source)) == 1


class TestERR01StaysQuiet:
    def test_repro_error_subclasses_pass(self):
        source = (
            "from repro.errors import ValidationError\n"
            "def f(x):\n"
            "    raise ValidationError(f'bad {x}')\n"
        )
        assert err01(source) == []

    def test_not_implemented_error_is_the_abstract_method_idiom(self):
        source = "def f():\n    raise NotImplementedError\n"
        assert err01(source) == []

    def test_re_raise_without_exception_passes(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        raise\n"
        )
        assert err01(source) == []

    def test_noqa_suppresses(self):
        source = "def f():\n    raise ValueError('x')  # repro: noqa[ERR01]\n"
        assert err01(source) == []
