"""CRY02 — flow-sensitive key-material taint over the fixture packages."""

from pathlib import Path

from repro.analysis import analyze_paths
from repro.analysis.runner import select_checkers

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def cry02(package):
    findings = analyze_paths([FIXTURES / package], select_checkers(["CRY02"]))
    return [(f.path.rsplit("/", 1)[-1], f.line, f.message) for f in findings]


class TestKeyleakFixture:
    def test_cross_module_flow_into_wire_sink(self):
        findings = cry02("keyleak")
        assert (
            "announce.py",
            9,
            "key material from 'SymmetricKey' flows into a .publish() wire sink",
        ) in findings

    def test_one_hop_flow_through_helper_parameter(self):
        messages = [message for _, _, message in cry02("keyleak")]
        assert any(
            "flows through parameter 'material'" in message
            and "journal .record() sink" in message
            for message in messages
        )

    def test_nothing_flagged_in_the_source_modules(self):
        # the source (kdc.py) and the helper (emitter.py) are not at fault;
        # both findings anchor at the announce.py call sites
        assert {name for name, _, _ in cry02("keyleak")} == {"announce.py"}


class TestSanitizedFixture:
    def test_digest_and_fingerprint_flows_are_clean(self):
        assert cry02("sanitized") == []


class TestShadowingCry01:
    def test_project_run_drops_duplicate_cry01(self, tmp_path):
        # a direct name-at-sink leak is found by both rules; the runner
        # keeps the flow-sensitive CRY02 finding only
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "leak.py").write_text(
            "def f(journal, trace_key):\n"
            "    journal.record('keydist', key=trace_key)\n"
        )
        findings = analyze_paths([pkg], select_checkers(["CRY01", "CRY02"]))
        assert [f.rule for f in findings] == ["CRY02"]

    def test_cipher_shape_findings_survive_the_dedup(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "cipher.py").write_text(
            "def f(cipher, block):\n"
            "    return cipher.encrypt(block, iv=b'0000')\n"
        )
        findings = analyze_paths([pkg], select_checkers(["CRY01", "CRY02"]))
        assert [f.rule for f in findings] == ["CRY01"]
        assert "constant IV" in findings[0].message
