"""The shipped source tree must satisfy its own linter, modulo the baseline.

This is the contract the CI ``analyze`` job enforces; keeping it in the
tier-1 suite means a violation fails fast locally, with the finding text
in the assertion message.  Findings recorded in ``analysis_baseline.json``
are tolerated (the ratchet lets counts fall, never rise); anything new is
a failure.
"""

import time

from pathlib import Path

from repro.analysis import (
    analyze_paths,
    compare_to_baseline,
    format_findings_text,
    load_baseline,
)

REPO = Path(__file__).resolve().parent.parent.parent
SRC = REPO / "src" / "repro"
BASELINE = REPO / "analysis_baseline.json"


def test_shipped_tree_matches_committed_baseline():
    findings = analyze_paths([SRC])
    regressions, _ = compare_to_baseline(findings, load_baseline(BASELINE))
    assert regressions == [], "\n".join(
        ["", *regressions, format_findings_text(findings)]
    )


def test_baseline_is_not_vacuous():
    # the ratchet only proves itself if the committed baseline tracks at
    # least one real finding — today, the key_distribution wire-vocabulary
    # gap (dispatched by topic, not kind)
    counts = load_baseline(BASELINE)
    assert counts, "empty baseline: regenerate with --update-baseline"
    assert "WIRE01" in counts


def test_shipped_tree_has_files_to_check():
    # guard against a silently-empty walk making the test above vacuous
    assert sum(1 for _ in SRC.rglob("*.py")) > 50


def test_project_analysis_is_fast_enough():
    # ISSUE acceptance bound: a full project run stays under 10 seconds
    started = time.perf_counter()
    analyze_paths([SRC])
    assert time.perf_counter() - started < 10.0
