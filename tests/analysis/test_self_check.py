"""The shipped source tree must satisfy its own linter.

This is the contract the CI ``analyze`` job enforces; keeping it in the
tier-1 suite means a violation fails fast locally, with the finding text
in the assertion message.
"""

from pathlib import Path

from repro.analysis import analyze_paths, format_findings_text

SRC = Path(__file__).resolve().parent.parent.parent / "src" / "repro"


def test_shipped_tree_is_clean():
    findings = analyze_paths([SRC])
    assert findings == [], "\n" + format_findings_text(findings)


def test_shipped_tree_has_files_to_check():
    # guard against a silently-empty walk making the test above vacuous
    assert sum(1 for _ in SRC.rglob("*.py")) > 50
