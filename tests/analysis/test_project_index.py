"""ProjectIndex: module naming, symbol tables, and call resolution."""

import ast

from pathlib import Path

from repro.analysis.base import FileContext
from repro.analysis.project import (
    ProjectIndex,
    call_param_pairs,
    enclosing_class_map,
    module_name_for,
)

REPO = Path(__file__).resolve().parent.parent.parent

ALPHA = '''
GREETING = "hello"


def top(x):
    return x


class Box:
    def put(self, item):
        return self.wrap(item)

    def wrap(self, item):
        return [item]
'''

BETA = """
from pkg.alpha import GREETING, top


def caller(value):
    return top(value)


def greet():
    return GREETING
"""


def build_index(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "alpha.py").write_text(ALPHA)
    (pkg / "beta.py").write_text(BETA)
    index = ProjectIndex()
    for name in ("__init__.py", "alpha.py", "beta.py"):
        path = pkg / name
        index.add(FileContext(str(path), path.read_text()))
    return index


def first_call(fn):
    return next(n for n in ast.walk(fn) if isinstance(n, ast.Call))


class TestModuleNaming:
    def test_real_tree_names(self):
        path = REPO / "src" / "repro" / "tracing" / "entity.py"
        assert module_name_for(path) == "repro.tracing.entity"

    def test_init_maps_to_package(self):
        path = REPO / "src" / "repro" / "analysis" / "__init__.py"
        assert module_name_for(path) == "repro.analysis"

    def test_loose_file_is_its_stem(self, tmp_path):
        target = tmp_path / "loose.py"
        target.write_text("")
        assert module_name_for(target) == "loose"


class TestSymbolTable:
    def test_functions_methods_and_constants(self, tmp_path):
        index = build_index(tmp_path)
        alpha = index.modules["pkg.alpha"]
        assert set(alpha.functions) == {"top", "Box.put", "Box.wrap"}
        assert alpha.constants == {"GREETING": "hello"}

    def test_enclosing_class_map(self, tmp_path):
        alpha = build_index(tmp_path).modules["pkg.alpha"]
        owners = enclosing_class_map(alpha)
        assert owners["Box.put"] == "Box"
        assert owners["top"] is None


class TestCallResolution:
    def test_bare_name_same_module(self, tmp_path):
        index = build_index(tmp_path)
        beta = index.modules["pkg.beta"]
        call = first_call(beta.functions["caller"])
        target, qualname = index.resolve_call(beta, call)
        assert (target.name, qualname) == ("pkg.alpha", "top")

    def test_self_method_needs_current_class(self, tmp_path):
        index = build_index(tmp_path)
        alpha = index.modules["pkg.alpha"]
        call = first_call(alpha.functions["Box.put"])
        assert index.resolve_call(alpha, call) is None
        target, qualname = index.resolve_call(alpha, call, current_class="Box")
        assert (target.name, qualname) == ("pkg.alpha", "Box.wrap")

    def test_unknown_call_is_none(self, tmp_path):
        index = build_index(tmp_path)
        beta = index.modules["pkg.beta"]
        call = ast.parse("mystery(1)", mode="eval").body
        assert index.resolve_call(beta, call) is None

    def test_imported_constant_resolves(self, tmp_path):
        index = build_index(tmp_path)
        beta = index.modules["pkg.beta"]
        ret = beta.functions["greet"].body[0]
        assert index.resolve_constant(beta, ret.value) == "hello"

    def test_call_param_pairs_positional_and_keyword(self, tmp_path):
        index = build_index(tmp_path)
        beta = index.modules["pkg.beta"]
        call = first_call(beta.functions["caller"])
        pairs = call_param_pairs(index, beta, call)
        assert [(name, type(arg)) for name, arg in pairs] == [("x", ast.Name)]


class TestLookupHelpers:
    def test_find_module_by_suffix(self, tmp_path):
        index = build_index(tmp_path)
        assert index.find_module("pkg/alpha.py").name == "pkg.alpha"
        assert index.find_module("nope/missing.py") is None

    def test_by_path(self, tmp_path):
        index = build_index(tmp_path)
        path = str(tmp_path / "pkg" / "beta.py")
        assert index.by_path(path).name == "pkg.beta"
