"""OBS01 — instrument names must match ``<family>.<noun>[.<detail>]``."""

from repro.analysis.base import analyze_source
from repro.analysis.rules.observability import KNOWN_FAMILIES, InstrumentNameChecker

BROKER_PATH = "src/repro/messaging/example.py"


def obs01(source, path=BROKER_PATH):
    return analyze_source(source, path, [InstrumentNameChecker()])


class TestOBS01Fires:
    def test_undocumented_family(self):
        findings = obs01("def f(metrics):\n    metrics.counter('bogus.msgs').inc()\n")
        assert [f.rule for f in findings] == ["OBS01"]
        assert "bogus" in findings[0].message

    def test_single_segment_name(self):
        findings = obs01("def f(metrics):\n    metrics.counter('broker').inc()\n")
        assert len(findings) == 1
        assert "not lowercase dotted" in findings[0].message

    def test_uppercase_name(self):
        findings = obs01("def f(metrics):\n    metrics.gauge('Broker.Inflight')\n")
        assert len(findings) == 1

    def test_fstring_without_literal_family_prefix(self):
        source = "def f(metrics, name):\n    metrics.histogram(f'{name}.latency')\n"
        findings = obs01(source)
        assert len(findings) == 1
        assert "literal" in findings[0].message

    def test_fstring_with_undocumented_family(self):
        source = "def f(metrics, op):\n    metrics.counter(f'nosuch.ops.{op}')\n"
        assert len(obs01(source)) == 1

    def test_timer_names_are_checked_too(self):
        source = "def f(registry, clock):\n    registry.timer('nope', clock)\n"
        assert len(obs01(source)) == 1


class TestOBS01StaysQuiet:
    def test_documented_families_pass(self):
        for family in sorted(KNOWN_FAMILIES):
            source = f"def f(metrics):\n    metrics.counter('{family}.events.total')\n"
            assert obs01(source) == [], family

    def test_two_segment_names_pass(self):
        assert obs01("def f(metrics):\n    metrics.histogram('broker.fanout')\n") == []

    def test_fstring_with_documented_prefix_passes(self):
        source = "def f(metrics, op):\n    metrics.counter(f'crypto.ops.{op}').inc()\n"
        assert obs01(source) == []

    def test_variable_names_are_skipped(self):
        source = "def f(metrics, name):\n    metrics.histogram(name)\n"
        assert obs01(source) == []

    def test_non_registry_receivers_are_skipped(self):
        source = "def f(shop):\n    shop.counter('cash register')\n"
        assert obs01(source) == []

    def test_noqa_suppresses(self):
        source = "def f(metrics):\n    metrics.counter('bogus.msgs')  # repro: noqa[OBS01]\n"
        assert obs01(source) == []
