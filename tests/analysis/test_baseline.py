"""The findings baseline: normalization, persistence, and the ratchet."""

import json

import pytest

from repro.analysis.base import Finding
from repro.analysis.baseline import (
    BASELINE_SCHEMA_VERSION,
    baseline_counts,
    compare_to_baseline,
    load_baseline,
    normalize_path,
    write_baseline,
)
from repro.errors import ConfigurationError


def finding(rule="WIRE01", path="src/repro/security/keydist.py", line=33):
    return Finding(rule=rule, severity="error", path=path, line=line, message="m")


class TestNormalizePath:
    def test_absolute_and_relative_agree(self):
        relative = normalize_path("src/repro/security/keydist.py")
        absolute = normalize_path("/root/repo/src/repro/security/keydist.py")
        assert relative == absolute == "src/repro/security/keydist.py"

    def test_path_without_src_keeps_shape(self):
        assert normalize_path("/tmp/pkg/mod.py") == "tmp/pkg/mod.py"


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline([finding(), finding(), finding(rule="DET03")], target)
        counts = load_baseline(target)
        assert counts == {
            "WIRE01": {"src/repro/security/keydist.py": 2},
            "DET03": {"src/repro/security/keydist.py": 1},
        }
        payload = json.loads(target.read_text())
        assert payload["schema_version"] == BASELINE_SCHEMA_VERSION

    def test_missing_file_is_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_baseline(tmp_path / "ghost.json")

    def test_bad_json_is_configuration_error(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text("{nope")
        with pytest.raises(ConfigurationError):
            load_baseline(target)

    def test_wrong_schema_version_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"schema_version": 99, "counts": {}}))
        with pytest.raises(ConfigurationError):
            load_baseline(target)


class TestRatchet:
    def test_matching_counts_pass(self):
        baseline = baseline_counts([finding()])
        regressions, improvements = compare_to_baseline([finding()], baseline)
        assert regressions == [] and improvements == []

    def test_new_finding_is_a_regression(self):
        baseline = baseline_counts([finding()])
        regressions, _ = compare_to_baseline(
            [finding(), finding(rule="CRY02", path="src/repro/x.py")], baseline
        )
        assert len(regressions) == 1
        assert "CRY02" in regressions[0] and "baseline accepts 0" in regressions[0]

    def test_count_increase_at_same_site_is_a_regression(self):
        baseline = baseline_counts([finding()])
        regressions, _ = compare_to_baseline([finding(), finding(line=40)], baseline)
        assert len(regressions) == 1
        assert "2 finding(s), baseline accepts 1" in regressions[0]

    def test_fixed_finding_is_an_improvement_not_a_failure(self):
        baseline = baseline_counts([finding()])
        regressions, improvements = compare_to_baseline([], baseline)
        assert regressions == []
        assert len(improvements) == 1 and "--update-baseline" in improvements[0]

    def test_line_moves_do_not_break_the_gate(self):
        # counts, not line numbers, are the ledger currency
        baseline = baseline_counts([finding(line=33)])
        regressions, improvements = compare_to_baseline([finding(line=90)], baseline)
        assert regressions == [] and improvements == []
