"""WIRE01 — kind coverage, static-table drift, and field parity."""

from pathlib import Path

from repro.analysis import analyze_paths
from repro.analysis.base import FileContext
from repro.analysis.project import ProjectIndex
from repro.analysis.rules.wire_schema import (
    encoder_attribute_reads,
    handled_kinds,
    produced_kinds,
    static_interned_strings,
    wire_dict_fields,
)
from repro.analysis.runner import select_checkers

REPO = Path(__file__).resolve().parent.parent.parent
FIXTURES = Path(__file__).resolve().parent / "fixtures"


def wire01(path):
    return analyze_paths([path], select_checkers(["WIRE01"]))


def index_of(*paths):
    index = ProjectIndex()
    for root in paths:
        for path in sorted(Path(root).rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            index.add(FileContext(str(path), path.read_text()))
    return index


class TestUnhandledKindFixture:
    def test_produced_but_unhandled_kind_is_an_error(self):
        findings = wire01(FIXTURES / "unhandled_kind")
        assert len(findings) == 1
        (finding,) = findings
        assert finding.severity == "error"
        assert "'shutdown_notice'" in finding.message
        assert finding.path.endswith("producer.py")
        assert finding.line == 7  # the dict literal, not the constant def

    def test_handled_kind_is_not_flagged(self):
        messages = [f.message for f in wire01(FIXTURES / "unhandled_kind")]
        assert not any("'ping'" in m for m in messages)


class TestVocabularyExtraction:
    def test_fixture_produced_kinds_resolve_constants(self):
        sites = produced_kinds(index_of(FIXTURES / "unhandled_kind"))
        assert set(sites) == {"shutdown_notice", "ping"}

    def test_fixture_handled_kinds(self):
        sites = handled_kinds(index_of(FIXTURES / "unhandled_kind"))
        assert set(sites) == {"ping"}

    def test_real_tree_kind_vocabulary(self):
        index = index_of(REPO / "src" / "repro")
        produced = set(produced_kinds(index))
        handled = set(handled_kinds(index))
        # the protocol's core kinds are produced and dispatched on
        assert {"ping", "ping_response", "sym", "trace_key"} <= produced & handled
        # key_distribution is dispatched by *topic*, not kind — the one
        # committed baseline entry (see analysis_baseline.json)
        assert "key_distribution" in produced - handled

    def test_real_static_table_and_field_parity(self):
        index = index_of(REPO / "src" / "repro")
        compact = index.find_module("wire/compact.py")
        message_module = index.find_module("messaging/message.py")
        interned = static_interned_strings(compact)
        assert set(produced_kinds(index)) <= interned
        fields, extras = wire_dict_fields(message_module)
        assert fields == encoder_attribute_reads(compact)
        assert "destinations" in extras


class TestFieldParityFindings:
    def test_dropped_field_is_flagged_both_ways(self, tmp_path):
        pkg = tmp_path / "pkg" / "messaging"
        wire = tmp_path / "pkg" / "wire"
        for d in (pkg.parent, pkg, wire):
            d.mkdir(exist_ok=True)
            (d / "__init__.py").write_text("")
        (pkg / "message.py").write_text(
            "class Message:\n"
            "    def wire_dict(self):\n"
            "        return {'topic': self.topic, 'body': self.body}\n"
        )
        (wire / "compact.py").write_text(
            "def _encode_message_body(message, out):\n"
            "    out.append(message.topic)\n"
            "    out.append(message.signature)\n"
        )
        messages = [f.message for f in wire01(tmp_path)]
        assert any("'body' is never read by the compact codec" in m for m in messages)
        assert any("encodes attribute 'signature'" in m for m in messages)
