"""DET01 (wall clock / global RNG) and DET02 (set-iteration ordering)."""

from repro.analysis.base import analyze_source
from repro.analysis.rules.determinism import SetIterationChecker, WallClockChecker

SIM_PATH = "src/repro/sim/example.py"
MESSAGING_PATH = "src/repro/messaging/example.py"


def det01(source, path=SIM_PATH):
    return analyze_source(source, path, [WallClockChecker()])


def det02(source, path=MESSAGING_PATH):
    return analyze_source(source, path, [SetIterationChecker()])


class TestDET01Fires:
    def test_time_time(self):
        findings = det01("import time\nstamp = time.time()\n")
        assert [f.rule for f in findings] == ["DET01"]
        assert "time.time" in findings[0].message

    def test_datetime_now_via_from_import(self):
        findings = det01("from datetime import datetime\nnow = datetime.now()\n")
        assert len(findings) == 1

    def test_aliased_monotonic(self):
        findings = det01("from time import monotonic as mono\nt = mono()\n")
        assert len(findings) == 1

    def test_module_level_random(self):
        findings = det01("import random\nx = random.random()\n")
        assert len(findings) == 1
        assert "global RNG" in findings[0].message

    def test_unseeded_random_instance(self):
        findings = det01("import random\nrng = random.Random()\n")
        assert len(findings) == 1
        assert "unseeded" in findings[0].message


class TestDET01StaysQuiet:
    def test_seeded_random_instance_is_fine(self):
        assert det01("import random\nrng = random.Random(42)\n") == []

    def test_injected_rng_calls_are_fine(self):
        assert det01("def jitter(rng):\n    return rng.random()\n") == []

    def test_virtual_clock_reads_are_fine(self):
        assert det01("def now(sim):\n    return sim.clock.now()\n") == []

    def test_random_streams_module_is_exempt(self):
        source = "import random\nrng = random.Random()\n"
        assert det01(source, path="src/repro/sim/random.py") == []

    def test_runtime_package_is_exempt(self):
        source = "import time\nt = time.monotonic()\n"
        assert det01(source, path="src/repro/runtime/realtime.py") == []

    def test_noqa_suppresses(self):
        source = "import time\nstamp = time.time()  # repro: noqa[DET01]\n"
        assert det01(source) == []


class TestDET02Fires:
    def test_for_over_set_call(self):
        findings = det02("def route(ids):\n    for i in set(ids):\n        print(i)\n")
        assert [f.rule for f in findings] == ["DET02"]
        assert findings[0].severity == "warning"

    def test_for_over_set_literal(self):
        findings = det02("for x in {1, 2, 3}:\n    pass\n")
        assert len(findings) == 1

    def test_comprehension_over_set(self):
        findings = det02("out = [x for x in set(range(3))]\n")
        assert len(findings) == 1

    def test_set_union_iteration(self):
        findings = det02("def f(a, b):\n    for x in a.union(b):\n        pass\n")
        assert len(findings) == 1

    def test_keys_iteration(self):
        findings = det02("def f(d):\n    for k in d.keys():\n        pass\n")
        assert len(findings) == 1


class TestDET02StaysQuiet:
    def test_sorted_set_is_fine(self):
        assert det02("def f(ids):\n    for i in sorted(set(ids)):\n        pass\n") == []

    def test_list_iteration_is_fine(self):
        assert det02("for x in [1, 2]:\n    pass\n") == []

    def test_dict_iteration_is_fine(self):
        assert det02("def f(d):\n    for k in d:\n        pass\n") == []

    def test_out_of_scope_directory_is_fine(self):
        source = "for x in {1, 2}:\n    pass\n"
        assert det02(source, path="src/repro/bench/example.py") == []

    def test_noqa_suppresses(self):
        source = "def f(ids):\n    for i in set(ids):  # repro: noqa[DET02]\n        pass\n"
        assert det02(source) == []
