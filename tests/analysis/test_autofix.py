"""``--add-noqa``: inserting and merging suppression comments."""

from repro.analysis.autofix import add_noqa
from repro.analysis.base import Finding


def finding(path, line, rule="DET01"):
    return Finding(rule=rule, severity="error", path=path, line=line, message="m")


def test_appends_comment_to_flagged_line(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("import time\nstamp = time.time()\n")
    edits = add_noqa([finding(str(target), 2)])
    assert edits == {str(target): 1}
    assert target.read_text().splitlines()[1] == "stamp = time.time()  # repro: noqa[DET01]"


def test_merges_rules_on_one_line(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("raise ValueError(time.time())\n")
    add_noqa([finding(str(target), 1), finding(str(target), 1, rule="ERR01")])
    assert "# repro: noqa[DET01,ERR01]" in target.read_text()


def test_merges_into_existing_suppression(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("stamp = time.time()  # repro: noqa[ERR01]\n")
    add_noqa([finding(str(target), 1)])
    assert "# repro: noqa[DET01,ERR01]" in target.read_text()


def test_bare_noqa_left_alone(tmp_path):
    target = tmp_path / "mod.py"
    before = "stamp = time.time()  # repro: noqa\n"
    target.write_text(before)
    assert add_noqa([finding(str(target), 1)]) == {}
    assert target.read_text() == before


def test_no_findings_no_edits(tmp_path):
    assert add_noqa([]) == {}
