"""File walking, rule selection, JSON schema, and metrics-registry stats."""

import json

import pytest

from repro.analysis.runner import (
    all_rule_ids,
    analyze_paths,
    format_findings_json,
    format_findings_text,
    iter_python_files,
    record_stats,
    rule_counts,
    select_checkers,
)
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry

DIRTY = "def f():\n    raise ValueError('x')\n"
CLEAN = "def f():\n    return 1\n"


@pytest.fixture()
def fake_tree(tmp_path):
    """A miniature src/repro tree with one violation."""
    pkg = tmp_path / "src" / "repro" / "util"
    pkg.mkdir(parents=True)
    (pkg / "dirty.py").write_text(DIRTY)
    (pkg / "clean.py").write_text(CLEAN)
    (pkg / "__pycache__").mkdir()
    (pkg / "__pycache__" / "junk.py").write_text("raise ValueError('ignored')\n")
    return tmp_path / "src"


class TestIterPythonFiles:
    def test_walk_skips_pycache_and_sorts(self, fake_tree):
        names = [p.name for p in iter_python_files([fake_tree])]
        assert names == ["clean.py", "dirty.py"]

    def test_explicit_file_passes_through(self, fake_tree):
        target = fake_tree / "repro" / "util" / "dirty.py"
        assert list(iter_python_files([target])) == [target]

    def test_missing_path_is_a_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError):
            list(iter_python_files([tmp_path / "nope"]))


class TestSelectCheckers:
    def test_default_is_full_catalogue(self):
        assert [c.rule for c in select_checkers(None)] == all_rule_ids()

    def test_subset_preserves_catalogue_order(self):
        assert [c.rule for c in select_checkers(["ERR01", "DET01"])] == [
            "DET01",
            "ERR01",
        ]

    def test_rule_ids_case_insensitive(self):
        assert [c.rule for c in select_checkers(["err01"])] == ["ERR01"]

    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigurationError):
            select_checkers(["NOPE99"])


class TestAnalyzePaths:
    def test_finds_the_violation(self, fake_tree):
        findings = analyze_paths([fake_tree])
        assert [(f.rule, f.line) for f in findings] == [("ERR01", 2)]
        assert findings[0].path.endswith("repro/util/dirty.py")

    def test_restricting_rules_hides_it(self, fake_tree):
        assert analyze_paths([fake_tree], select_checkers(["OBS01"])) == []


class TestRendering:
    def test_text_output_ends_with_summary(self, fake_tree):
        text = format_findings_text(analyze_paths([fake_tree]))
        assert text.endswith("1 finding")
        assert "ERR01" in text

    def test_json_schema_is_stable(self, fake_tree):
        findings = analyze_paths([fake_tree])
        payload = json.loads(format_findings_json(findings, all_rule_ids()))
        assert payload["schema_version"] == 1
        assert set(payload) == {"schema_version", "findings", "counts"}
        (record,) = payload["findings"]
        assert set(record) == {"rule", "severity", "path", "line", "message", "hint"}
        assert record["rule"] == "ERR01"
        assert record["line"] == 2
        # quiet rules appear zero-filled so consumers can diff runs
        assert payload["counts"]["ERR01"] == 1
        assert payload["counts"]["OBS01"] == 0

    def test_empty_json_report(self):
        payload = json.loads(format_findings_json([], all_rule_ids()))
        assert payload["findings"] == []
        assert set(payload["counts"]) == set(all_rule_ids())


class TestRecordStats:
    def test_counts_land_in_the_metrics_registry(self, fake_tree):
        registry = MetricsRegistry()
        findings = analyze_paths([fake_tree])
        record_stats(findings, registry)
        assert registry.counter_value("analysis.findings.err01") == 1
        # zero-filled for quiet rules: "ran clean" is distinguishable from
        # "never ran"
        assert "analysis.findings.obs01" in registry.names()
        assert registry.counter_value("analysis.findings.obs01") == 0

    def test_counts_respect_rule_subset(self):
        registry = MetricsRegistry()
        record_stats([], registry, rules=["DET01"])
        assert registry.names() == ["analysis.findings.det01"]

    def test_rule_counts_helper(self):
        assert rule_counts([], ["A", "B"]) == {"A": 0, "B": 0}
