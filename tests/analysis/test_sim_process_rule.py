"""SIM01 — blocking stdlib I/O inside simulation process generators."""

from repro.analysis.base import analyze_source
from repro.analysis.rules.sim_process import BlockingSimProcessChecker

TRACING_PATH = "src/repro/tracing/example.py"


def sim01(source, path=TRACING_PATH):
    return analyze_source(source, path, [BlockingSimProcessChecker()])


PROCESS_WITH_SLEEP = """\
import time

def heartbeat_loop(sim):
    while True:
        time.sleep(0.5)
        yield sim.timeout(500.0)
"""

PROCESS_WITH_SOCKET = """\
import socket

def ping_loop(sim):
    sock = socket.socket()
    yield sim.timeout(1.0)
"""

PROCESS_WRITING_FILE = """\
def dump_loop(sim, path):
    with open(path, "w") as fh:
        fh.write("x")
    yield sim.timeout(1.0)
"""

COMPLIANT_PROCESS = """\
def heartbeat_loop(sim, entity):
    while True:
        yield sim.timeout(entity.interval_ms)
        entity.publish_heartbeat()
"""


class TestSIM01Fires:
    def test_time_sleep_in_generator(self):
        findings = sim01(PROCESS_WITH_SLEEP)
        assert [f.rule for f in findings] == ["SIM01"]
        assert "heartbeat_loop" in findings[0].message

    def test_socket_in_generator(self):
        findings = sim01(PROCESS_WITH_SOCKET)
        assert len(findings) == 1
        assert "socket" in findings[0].message

    def test_open_for_write_in_generator(self):
        findings = sim01(PROCESS_WRITING_FILE)
        assert len(findings) == 1

    def test_dynamic_open_mode_is_assumed_blocking(self):
        source = "def p(sim, mode):\n    open('x', mode)\n    yield sim.timeout(1)\n"
        assert len(sim01(source)) == 1


class TestSIM01StaysQuiet:
    def test_compliant_process(self):
        assert sim01(COMPLIANT_PROCESS) == []

    def test_sleep_in_plain_function_is_out_of_scope(self):
        source = "import time\ndef helper():\n    time.sleep(0.1)\n"
        assert sim01(source) == []

    def test_read_only_open_is_fine(self):
        source = "def p(sim):\n    data = open('x').read()\n    yield sim.timeout(1)\n"
        assert sim01(source) == []

    def test_nested_def_does_not_make_outer_a_generator(self):
        source = (
            "import time\n"
            "def outer():\n"
            "    def inner():\n"
            "        yield 1\n"
            "    time.sleep(0.1)\n"
        )
        assert sim01(source) == []

    def test_out_of_scope_directory(self):
        assert sim01(PROCESS_WITH_SLEEP, path="src/repro/bench/example.py") == []

    def test_noqa_suppresses(self):
        source = (
            "import time\n"
            "def p(sim):\n"
            "    time.sleep(0.1)  # repro: noqa[SIM01]\n"
            "    yield sim.timeout(1)\n"
        )
        assert sim01(source) == []
