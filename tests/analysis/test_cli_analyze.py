"""The ``repro analyze`` subcommand: exit codes, formats, stats."""

import json

import pytest

from repro.cli import main

DIRTY = "import time\ndef f():\n    stamp = time.time()\n    raise ValueError(stamp)\n"
CLEAN = "def f():\n    return 1\n"


@pytest.fixture()
def dirty_file(tmp_path):
    target = tmp_path / "src" / "repro" / "sim" / "example.py"
    target.parent.mkdir(parents=True)
    target.write_text(DIRTY)
    return target


@pytest.fixture()
def clean_file(tmp_path):
    target = tmp_path / "src" / "repro" / "sim" / "example.py"
    target.parent.mkdir(parents=True)
    target.write_text(CLEAN)
    return target


class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_file, capsys):
        assert main(["analyze", str(clean_file)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, dirty_file, capsys):
        assert main(["analyze", str(dirty_file)]) == 1
        out = capsys.readouterr().out
        assert "DET01" in out and "ERR01" in out

    def test_unknown_rule_exits_two(self, clean_file, capsys):
        assert main(["analyze", str(clean_file), "--rules", "NOPE99"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "ghost")]) == 2


class TestRuleSelection:
    def test_rules_filter_restricts_findings(self, dirty_file, capsys):
        assert main(["analyze", str(dirty_file), "--rules", "ERR01"]) == 1
        out = capsys.readouterr().out
        assert "ERR01" in out and "DET01" not in out


class TestJsonFormat:
    def test_json_report_schema(self, dirty_file, capsys):
        assert main(["analyze", str(dirty_file), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        rules = {f["rule"] for f in payload["findings"]}
        assert {"DET01", "ERR01"} <= rules
        for record in payload["findings"]:
            assert set(record) == {
                "rule", "severity", "path", "line", "message", "hint",
            }

    def test_json_clean_report(self, clean_file, capsys):
        assert main(["analyze", str(clean_file), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []


class TestStats:
    def test_stats_render_registry_counters(self, dirty_file, capsys):
        assert main(["analyze", str(dirty_file), "--stats"]) == 1
        out = capsys.readouterr().out
        assert "analysis.findings.det01" in out
        assert "analysis.findings.err01" in out
        # quiet rules are rendered too, at zero
        assert "analysis.findings.obs01" in out

    def test_noqa_marked_file_is_clean(self, tmp_path, capsys):
        target = tmp_path / "src" / "repro" / "sim" / "example.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "import time\nstamp = time.time()  # repro: noqa[DET01]\n"
        )
        assert main(["analyze", str(target)]) == 0
