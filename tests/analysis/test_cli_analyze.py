"""The ``repro analyze`` subcommand: exit codes, formats, stats."""

import json

import pytest

from repro.cli import main

DIRTY = "import time\ndef f():\n    stamp = time.time()\n    raise ValueError(stamp)\n"
CLEAN = "def f():\n    return 1\n"


@pytest.fixture()
def dirty_file(tmp_path):
    target = tmp_path / "src" / "repro" / "sim" / "example.py"
    target.parent.mkdir(parents=True)
    target.write_text(DIRTY)
    return target


@pytest.fixture()
def clean_file(tmp_path):
    target = tmp_path / "src" / "repro" / "sim" / "example.py"
    target.parent.mkdir(parents=True)
    target.write_text(CLEAN)
    return target


class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_file, capsys):
        assert main(["analyze", str(clean_file)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, dirty_file, capsys):
        assert main(["analyze", str(dirty_file)]) == 1
        out = capsys.readouterr().out
        assert "DET01" in out and "ERR01" in out

    def test_unknown_rule_exits_two(self, clean_file, capsys):
        assert main(["analyze", str(clean_file), "--rules", "NOPE99"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "ghost")]) == 2


class TestRuleSelection:
    def test_rules_filter_restricts_findings(self, dirty_file, capsys):
        assert main(["analyze", str(dirty_file), "--rules", "ERR01"]) == 1
        out = capsys.readouterr().out
        assert "ERR01" in out and "DET01" not in out


class TestJsonFormat:
    def test_json_report_schema(self, dirty_file, capsys):
        assert main(["analyze", str(dirty_file), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        rules = {f["rule"] for f in payload["findings"]}
        assert {"DET01", "ERR01"} <= rules
        for record in payload["findings"]:
            assert set(record) == {
                "rule", "severity", "path", "line", "message", "hint",
            }

    def test_json_clean_report(self, clean_file, capsys):
        assert main(["analyze", str(clean_file), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []


class TestStats:
    def test_stats_render_registry_counters(self, dirty_file, capsys):
        assert main(["analyze", str(dirty_file), "--stats"]) == 1
        out = capsys.readouterr().out
        assert "analysis.findings.det01" in out
        assert "analysis.findings.err01" in out
        # quiet rules are rendered too, at zero
        assert "analysis.findings.obs01" in out

    def test_noqa_marked_file_is_clean(self, tmp_path, capsys):
        target = tmp_path / "src" / "repro" / "sim" / "example.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "import time\nstamp = time.time()  # repro: noqa[DET01]\n"
        )
        assert main(["analyze", str(target)]) == 0


class TestBaselineRatchet:
    def test_update_baseline_writes_and_exits_zero(self, dirty_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        code = main(
            ["analyze", str(dirty_file), "--baseline", str(baseline), "--update-baseline"]
        )
        assert code == 0
        assert "baseline written" in capsys.readouterr().out
        assert json.loads(baseline.read_text())["schema_version"] == 1

    def test_known_findings_pass_the_gate(self, dirty_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        main(["analyze", str(dirty_file), "--baseline", str(baseline), "--update-baseline"])
        capsys.readouterr()
        assert main(["analyze", str(dirty_file), "--baseline", str(baseline)]) == 0

    def test_new_finding_fails_the_gate(self, dirty_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        main(["analyze", str(dirty_file), "--baseline", str(baseline), "--update-baseline"])
        capsys.readouterr()
        dirty_file.write_text(DIRTY + "\n\ndef g():\n    raise KeyError('extra')\n")
        assert main(["analyze", str(dirty_file), "--baseline", str(baseline)]) == 1
        assert "NEW FINDING vs baseline" in capsys.readouterr().out

    def test_fixed_finding_passes_and_reports_improvement(
        self, dirty_file, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        main(["analyze", str(dirty_file), "--baseline", str(baseline), "--update-baseline"])
        capsys.readouterr()
        dirty_file.write_text(CLEAN)
        assert main(["analyze", str(dirty_file), "--baseline", str(baseline)]) == 0
        assert "--update-baseline" in capsys.readouterr().out

    def test_update_without_baseline_path_exits_two(self, clean_file, capsys):
        assert main(["analyze", str(clean_file), "--update-baseline"]) == 2

    def test_missing_baseline_file_exits_two(self, clean_file, tmp_path, capsys):
        code = main(["analyze", str(clean_file), "--baseline", str(tmp_path / "ghost.json")])
        assert code == 2


class TestSarifOutput:
    def test_sarif_to_stdout(self, dirty_file, capsys):
        assert main(["analyze", str(dirty_file), "--format", "json", "--sarif", "-"]) == 1
        out = capsys.readouterr().out
        sarif = json.loads(out[out.index('{\n  "$schema"'):])
        assert sarif["version"] == "2.1.0"
        assert sarif["runs"][0]["tool"]["driver"]["name"] == "repro-analyze"
        assert {r["ruleId"] for r in sarif["runs"][0]["results"]} == {"DET01", "ERR01"}

    def test_sarif_to_file(self, clean_file, tmp_path, capsys):
        target = tmp_path / "out.sarif"
        assert main(["analyze", str(clean_file), "--sarif", str(target)]) == 0
        assert json.loads(target.read_text())["runs"][0]["results"] == []


class TestAddNoqa:
    def test_add_noqa_rewrites_and_run_goes_clean(self, dirty_file, capsys):
        assert main(["analyze", str(dirty_file), "--add-noqa"]) == 0
        out = capsys.readouterr().out
        assert "added noqa" in out
        text = dirty_file.read_text()
        assert "# repro: noqa[DET01]" in text
        assert "# repro: noqa[ERR01]" in text
        assert main(["analyze", str(dirty_file)]) == 0

    def test_add_noqa_on_clean_tree_changes_nothing(self, clean_file, capsys):
        before = clean_file.read_text()
        assert main(["analyze", str(clean_file), "--add-noqa"]) == 0
        assert clean_file.read_text() == before
