"""CRY01 — key material out of observable output; no degenerate cipher modes."""

from repro.analysis.base import analyze_source
from repro.analysis.rules.crypto_hygiene import SecretExposureChecker, is_secret_name

CRYPTO_PATH = "src/repro/security/example.py"


def cry01(source, path=CRYPTO_PATH):
    return analyze_source(source, path, [SecretExposureChecker()])


class TestSecretNameHeuristic:
    def test_key_material_names(self):
        assert is_secret_name("trace_key")
        assert is_secret_name("secret")
        assert is_secret_name("private_exponent")
        assert is_secret_name("session_keys")

    def test_key_metadata_names_are_not_secret(self):
        assert not is_secret_name("key_bits")
        assert not is_secret_name("key_size")
        assert not is_secret_name("key_id")
        assert not is_secret_name("key_fingerprint")

    def test_unrelated_names(self):
        assert not is_secret_name("monkey")
        assert not is_secret_name("broker_id")


class TestCRY01Fires:
    def test_secret_in_fstring(self):
        findings = cry01('def f(trace_key):\n    return f"key is {trace_key}"\n')
        assert [f.rule for f in findings] == ["CRY01"]
        assert "trace_key" in findings[0].message

    def test_secret_attribute_in_fstring(self):
        findings = cry01('def f(self):\n    return f"{self.private_key}"\n')
        assert len(findings) == 1

    def test_repr_of_secret(self):
        findings = cry01("def f(secret):\n    return repr(secret)\n")
        assert len(findings) == 1

    def test_secret_passed_to_journal_record(self):
        source = (
            "def f(journal, trace_key):\n"
            "    journal.record('keydist', key=trace_key)\n"
        )
        findings = cry01(source)
        assert len(findings) == 1

    def test_secret_passed_to_log_call(self):
        source = "def f(logger, private_key):\n    logger.debug(private_key)\n"
        assert len(cry01(source)) == 1

    def test_constant_iv(self):
        source = "def f(cipher, data):\n    return cipher.encrypt(data, iv=b'0000000000000000')\n"
        findings = cry01(source)
        assert len(findings) == 1
        assert "constant IV" in findings[0].message

    def test_ecb_call(self):
        source = "def f(aes, data):\n    return aes_ecb_encrypt(aes, data)\n"
        findings = cry01(source)
        assert "ECB" in findings[0].message

    def test_raw_block_encryption_outside_cipher_core(self):
        source = "def f(block, keys):\n    return encrypt_block(block, keys)\n"
        findings = cry01(source)
        assert len(findings) == 1
        assert "ECB-shaped" in findings[0].message


class TestCRY01StaysQuiet:
    def test_key_metadata_in_fstring_is_fine(self):
        assert cry01('def f(key_bits):\n    return f"AES-{key_bits}"\n') == []

    def test_fingerprint_logging_is_fine(self):
        source = "def f(journal, key_fingerprint):\n    journal.record('keydist', kid=key_fingerprint)\n"
        assert cry01(source) == []

    def test_fresh_iv_from_rng_is_fine(self):
        source = "def f(cipher, data, rng):\n    return cipher.encrypt(data, iv=rng.randbytes(16))\n"
        assert cry01(source) == []

    def test_block_helpers_inside_cipher_core_are_fine(self):
        source = "def f(block, keys):\n    return encrypt_block(block, keys)\n"
        assert cry01(source, path="src/repro/crypto/aes.py") == []

    def test_noqa_suppresses(self):
        source = "def f(secret):\n    return repr(secret)  # repro: noqa[CRY01]\n"
        assert cry01(source) == []


class TestAccessChainRegressions:
    """False positives fixed when CRY01 grew chain awareness: metadata and
    mapping access spelled through subscripts must stay quiet, while key
    material reached *through* a subscript must flag."""

    def test_secret_under_constant_subscript_flags(self):
        findings = cry01('def f(meta):\n    return f"{meta[\'private_key\']}"\n')
        assert len(findings) == 1
        assert "private_key" in findings[0].message

    def test_metadata_key_of_secret_mapping_is_fine(self):
        assert cry01('def f(keys):\n    return f"{keys[\'count\']}"\n') == []

    def test_nested_metadata_subscript_is_fine(self):
        source = 'def f(report):\n    return f"{report[\'keys\'][\'fingerprint\']}"\n'
        assert cry01(source) == []

    def test_sliced_bare_key_is_fine(self):
        # a digest-derived session tag, not key material (broker_ops.py
        # builds exactly this: f"session-{key[:8]}" from a hex digest)
        source = 'def f(session_id):\n    key = session_id.value.hex\n    return f"session-{key[:8]}"\n'
        assert cry01(source) == []

    def test_sliced_specific_key_still_flags(self):
        findings = cry01('def f(trace_key):\n    return f"{trace_key[:8]}"\n')
        assert len(findings) == 1

    def test_metadata_attribute_access_is_fine(self):
        assert cry01('def f(ring):\n    return f"{ring.keys.count}"\n') == []
