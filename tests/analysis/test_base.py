"""Framework behavior: noqa suppression, import resolution, finding shape."""

import pytest

from repro.analysis.base import FileContext, Finding, analyze_source
from repro.errors import ConfigurationError

SIM_PATH = "src/repro/sim/example.py"


class TestNoqaParsing:
    def test_bare_noqa_suppresses_every_rule(self):
        ctx = FileContext(SIM_PATH, "x = 1  # repro: noqa\n")
        assert ctx.suppressed("DET01", 1)
        assert ctx.suppressed("ERR01", 1)

    def test_bracketed_noqa_suppresses_only_named_rules(self):
        ctx = FileContext(SIM_PATH, "x = 1  # repro: noqa[DET01]\n")
        assert ctx.suppressed("DET01", 1)
        assert not ctx.suppressed("ERR01", 1)

    def test_multiple_rules_in_one_comment(self):
        ctx = FileContext(SIM_PATH, "x = 1  # repro: noqa[DET01, ERR01]\n")
        assert ctx.suppressed("DET01", 1)
        assert ctx.suppressed("ERR01", 1)
        assert not ctx.suppressed("OBS01", 1)

    def test_rule_ids_are_case_insensitive(self):
        ctx = FileContext(SIM_PATH, "x = 1  # repro: noqa[det01]\n")
        assert ctx.suppressed("DET01", 1)

    def test_noqa_applies_only_to_its_own_line(self):
        ctx = FileContext(SIM_PATH, "x = 1  # repro: noqa\ny = 2\n")
        assert not ctx.suppressed("DET01", 2)

    def test_trailing_prose_after_bracket_is_allowed(self):
        ctx = FileContext(SIM_PATH, "x = 1  # repro: noqa[DET01] calibration helper\n")
        assert ctx.suppressed("DET01", 1)

    def test_plain_ruff_noqa_is_not_a_repro_noqa(self):
        ctx = FileContext(SIM_PATH, "x = 1  # noqa: F401\n")
        assert not ctx.suppressed("DET01", 1)


class TestImportResolution:
    def test_plain_import(self):
        ctx = FileContext(SIM_PATH, "import time\ntime.monotonic()\n")
        call = ctx.tree.body[1].value
        assert ctx.resolve(call.func) == "time.monotonic"

    def test_aliased_import(self):
        ctx = FileContext(SIM_PATH, "import time as t\nt.time()\n")
        call = ctx.tree.body[1].value
        assert ctx.resolve(call.func) == "time.time"

    def test_from_import_with_alias(self):
        ctx = FileContext(
            SIM_PATH, "from time import monotonic as mono\nmono()\n"
        )
        call = ctx.tree.body[1].value
        assert ctx.resolve(call.func) == "time.monotonic"

    def test_self_rooted_chain_keeps_attribute_dotted_path(self):
        ctx = FileContext(SIM_PATH, "def f(self):\n    return self.rng.random()\n")
        call = ctx.tree.body[0].body[0].value
        # `self` is a local name, but the chain through it is not a module
        # origin the linter can ban; resolve() keeps going (self.rng.random)
        # which never matches a banned dotted origin.
        assert ctx.resolve(call.func) == "self.rng.random"


class TestFinding:
    def test_render_includes_location_rule_and_hint(self):
        finding = Finding("DET01", "error", "a.py", 3, "bad", hint="fix it")
        assert finding.render() == "a.py:3: DET01 [error] bad (hint: fix it)"

    def test_to_dict_matches_stable_schema(self):
        finding = Finding("ERR01", "error", "a.py", 9, "msg", hint="h")
        assert finding.to_dict() == {
            "rule": "ERR01",
            "severity": "error",
            "path": "a.py",
            "line": 9,
            "message": "msg",
            "hint": "h",
        }


class TestAnalyzeSource:
    def test_clean_source_yields_no_findings(self):
        assert analyze_source("x = 1\n", SIM_PATH) == []

    def test_syntax_errors_surface_as_configuration_errors(self):
        with pytest.raises(ConfigurationError):
            analyze_source("def broken(:\n", SIM_PATH)

    def test_findings_sorted_by_line(self):
        source = (
            "import time\n"
            "def late():\n"
            "    return time.time()\n"
            "def early():\n"
            "    return time.monotonic()\n"
        )
        findings = analyze_source(source, SIM_PATH)
        lines = [f.line for f in findings]
        assert lines == sorted(lines) and len(findings) == 2
