"""Codec registry, resolution precedence, and the ``REPRO_CODEC`` knob."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.wire import (
    CODEC_ENV_VAR,
    codec_names,
    default_codec_name,
    get_codec,
    register_codec,
    resolve_codec,
)


class TestRegistry:
    def test_builtin_codecs_registered(self):
        assert "json" in codec_names()
        assert "compact" in codec_names()

    def test_unknown_codec_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown wire codec"):
            get_codec("cbor")

    def test_resolve_none_falls_back_to_json(self):
        assert resolve_codec(None).name == "json"

    def test_resolve_by_name_and_instance(self):
        compact = get_codec("compact")
        assert resolve_codec("compact") is compact
        assert resolve_codec(compact) is compact

    def test_custom_codec_registers_and_resolves(self):
        class EchoCodec:
            name = "echo-test"

            def encode(self, payload):
                return repr(payload).encode()

            def encode_into(self, payload, out):
                data = self.encode(payload)
                out.extend(data)
                return len(data)

            def decode(self, data):
                raise NotImplementedError

            def frame_overhead(self, frame):
                return 0

        register_codec(EchoCodec())
        try:
            assert resolve_codec("echo-test").name == "echo-test"
        finally:
            # keep the process-global registry clean for other tests
            from repro.wire.codec import _REGISTRY

            _REGISTRY.pop("echo-test", None)


class TestEnvDefault:
    def test_env_var_name(self):
        assert CODEC_ENV_VAR == "REPRO_CODEC"

    def test_unset_env_defaults_to_json(self, monkeypatch):
        monkeypatch.delenv(CODEC_ENV_VAR, raising=False)
        assert default_codec_name() == "json"

    def test_env_selects_codec(self, monkeypatch):
        monkeypatch.setenv(CODEC_ENV_VAR, "compact")
        assert default_codec_name() == "compact"

    def test_blank_env_is_ignored(self, monkeypatch):
        monkeypatch.setenv(CODEC_ENV_VAR, "  ")
        assert default_codec_name() == "json"

    def test_invalid_env_fails_fast(self, monkeypatch):
        monkeypatch.setenv(CODEC_ENV_VAR, "msgpack")
        with pytest.raises(ConfigurationError, match="REPRO_CODEC"):
            default_codec_name()
