"""Frame pool and memoized-sizing behaviour (the hot-path bugfix).

Before the codec seam, every send re-rendered the full envelope — a
message forwarded over N links was encoded N times.  These tests pin the
fix: one encode per (codec, message), exact derived frame sizes, pooled
scratch buffers, and memo invalidation when the message-id counter rewinds.
"""

from __future__ import annotations

from repro.messaging.message import Message, RoutedFrame, reset_message_ids
from repro.messaging.topics import Topic
from repro.obs import MetricsRegistry
from repro.wire import frame_size, get_codec, size_memo_stats
from repro.wire.pool import FramePool


def make_message(body="ping") -> Message:
    return Message(topic=Topic.of("Traces/abc/Liveness"), body=body, source="e-1")


class TestFramePool:
    def test_first_acquire_is_a_miss(self):
        pool = FramePool()
        pool.acquire()
        assert pool.misses == 1
        assert pool.hits == 0

    def test_release_then_acquire_reuses(self):
        pool = FramePool()
        buffer = pool.acquire()
        buffer.extend(b"leftover")
        pool.release(buffer)
        assert pool.free_count == 1
        again = pool.acquire()
        assert again is buffer
        assert len(again) == 0  # released buffers come back clean
        assert pool.hits == 1
        assert pool.reuses == 1

    def test_pool_is_bounded(self):
        pool = FramePool(max_buffers=2)
        buffers = [pool.acquire() for _ in range(4)]
        for buffer in buffers:
            pool.release(buffer)
        assert pool.free_count == 2

    def test_stats_snapshot(self):
        pool = FramePool()
        pool.release(pool.acquire())
        stats = pool.stats()
        assert stats["misses"] == 1
        assert stats["free"] == 1


class TestSizeMemo:
    def test_message_encoded_at_most_once_per_codec(self):
        reset_message_ids()
        message = make_message()
        for codec_name in ("json", "compact"):
            before = size_memo_stats().get(f"encodes.{codec_name}", 0)
            # a broker fanning the same message out over three links:
            # two routed frames plus a direct delivery
            frame_size(RoutedFrame(message, ("b-1", "b-2")), codec_name)
            frame_size(RoutedFrame(message, ("b-3",)), codec_name)
            frame_size(message, codec_name)
            after = size_memo_stats().get(f"encodes.{codec_name}", 0)
            assert after - before == 1

    def test_memo_hit_and_miss_counters(self):
        reset_message_ids()
        message = make_message()
        metrics = MetricsRegistry()
        frame_size(message, "json", metrics)
        frame_size(message, "json", metrics)
        assert metrics.counter("codec.encode.memo.miss").value == 1
        assert metrics.counter("codec.encode.memo.hit").value == 1

    def test_memoized_frame_size_matches_real_encode(self):
        reset_message_ids()
        message = make_message(body={"number": 7, "state": "Available"})
        frame = RoutedFrame(message, ("b-1", "b-2"))
        for codec_name in ("json", "compact"):
            codec = get_codec(codec_name)
            frame_size(message, codec_name)  # prime the memo
            assert frame_size(frame, codec_name) == len(codec.encode(frame))

    def test_reset_message_ids_clears_memo(self):
        reset_message_ids()
        frame_size(make_message(), "json")
        assert size_memo_stats()["entries"] >= 1
        reset_message_ids()
        assert size_memo_stats()["entries"] == 0

    def test_distinct_messages_are_not_aliased(self):
        reset_message_ids()
        small = make_message(body="x")
        large = make_message(body="y" * 500)
        assert frame_size(large, "json") > frame_size(small, "json")

    def test_encode_ms_observed_with_deterministic_cost(self):
        reset_message_ids()
        metrics = MetricsRegistry()
        frame_size(make_message(), "compact", metrics)
        histogram = metrics.histogram("codec.encode.ms")
        assert histogram.count == 1
        # modeled cost: strictly positive, far below a real millisecond
        assert 0.0 < histogram.mean < 1.0
