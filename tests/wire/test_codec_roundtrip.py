"""Property tests: both wire codecs round-trip adversarial messages.

The generators deliberately push on the compact format's edges — unicode
and deep (but protocol-realistic, <=10 segment) topics, raw ``bytes``
encrypted bodies, RSA-sized integers in signature/auth-token dicts, and
huge message ids — and assert ``decode(encode(m)) == m`` plus the two
structural invariants the sizing layer relies on: compact never renders
larger than json, and a routed frame's size is exactly the message size
plus the codec's declared destination overhead.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SerializationDecodeError
from repro.messaging.message import Message, RoutedFrame
from repro.messaging.topics import Topic
from repro.wire import CompactCodec, JsonCodec

JSON = JsonCodec()
COMPACT = CompactCodec()
CODECS = [JSON, COMPACT]


def codec_params():
    return pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)


# ---------------------------------------------------------------- strategies

# Topic segments: unicode-friendly, no '/' (separator), no wildcards, and
# bounded at 10 segments — the protocol never nests deeper, and bounding
# keeps the "compact <= json" size ordering honest (the ~90-byte envelope
# saving can only be eaten by pathological hundred-segment topics).
segment = st.text(min_size=1, max_size=12).filter(
    lambda s: "/" not in s and s not in ("*", ">")
)
topics = st.lists(segment, min_size=1, max_size=10).map(
    lambda segments: Topic.of("/".join(segments))
)

# RSA-sized integers as they appear in real tokens/signatures (150+ decimal
# digits — the compact codec's zigzag-varint win) plus small/negative ones.
big_ints = st.one_of(
    st.integers(min_value=-(2**63), max_value=2**63),
    st.integers(min_value=10**150, max_value=10**151),
)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    big_ints,
    st.floats(allow_nan=False),
    st.text(max_size=30),
    st.binary(max_size=30),
)
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=12,
)

# Security artifact dicts (serialized SignedEnvelope / auth token shapes).
artifact_dicts = st.one_of(
    st.none(),
    st.dictionaries(
        st.text(min_size=1, max_size=20),
        st.one_of(big_ints, st.binary(max_size=40), st.text(max_size=20)),
        min_size=1,
        max_size=6,
    ),
)

encrypted_bodies = st.binary(min_size=0, max_size=200)

messages = st.builds(
    Message,
    topic=topics,
    body=values,
    source=st.text(min_size=1, max_size=20),
    message_id=st.integers(min_value=1, max_value=2**64 - 1),
    created_ms=st.floats(min_value=0, max_value=1e12, allow_nan=False),
    signature=artifact_dicts,
    auth_token=artifact_dicts,
    encrypted=st.just(False),
)

encrypted_messages = st.builds(
    Message,
    topic=topics,
    body=encrypted_bodies,
    source=st.text(min_size=1, max_size=20),
    message_id=st.integers(min_value=1, max_value=2**64 - 1),
    signature=artifact_dicts,
    auth_token=artifact_dicts,
    encrypted=st.just(True),
)

any_message = st.one_of(messages, encrypted_messages)

frames = st.builds(
    RoutedFrame,
    message=any_message,
    destinations=st.lists(
        st.text(min_size=1, max_size=16), min_size=0, max_size=6
    ).map(tuple),
)


# ---------------------------------------------------------------- round trips


class TestMessageRoundTrip:
    @codec_params()
    @settings(max_examples=60)
    @given(message=any_message)
    def test_decode_inverts_encode(self, codec, message):
        assert codec.decode(codec.encode(message)) == message

    @codec_params()
    @given(message=messages)
    def test_hops_never_ride_the_wire(self, codec, message):
        forwarded = message.with_hop().with_hop()
        assert codec.encode(forwarded) == codec.encode(message)
        assert codec.decode(codec.encode(forwarded)) == message

    @codec_params()
    @settings(max_examples=40)
    @given(frame=frames)
    def test_frame_round_trip(self, codec, frame):
        decoded = codec.decode(codec.encode(frame))
        assert decoded == frame

    @codec_params()
    @settings(max_examples=40)
    @given(value=values)
    def test_plain_value_round_trip(self, codec, value):
        # plain (non-envelope) payloads must survive too — dict bodies are
        # only recognized as envelopes by their exact wire_dict shape
        if isinstance(value, dict):
            value = {"wrapped": value}
        decoded = codec.decode(codec.encode(value))
        assert decoded == _listify(value)


def _listify(value):
    """Canonical decoding renders tuples as lists; normalize for comparison."""
    if isinstance(value, tuple):
        return [_listify(v) for v in value]
    if isinstance(value, list):
        return [_listify(v) for v in value]
    if isinstance(value, dict):
        return {k: _listify(v) for k, v in value.items()}
    return value


# ---------------------------------------------------------------- invariants


class TestSizeInvariants:
    @settings(max_examples=60)
    @given(message=any_message)
    def test_compact_never_larger_than_json(self, message):
        assert len(COMPACT.encode(message)) <= len(JSON.encode(message))

    @codec_params()
    @settings(max_examples=40)
    @given(frame=frames)
    def test_frame_size_is_additive(self, codec, frame):
        whole = len(codec.encode(frame))
        bare = len(codec.encode(frame.message))
        assert whole == bare + codec.frame_overhead(frame)

    @codec_params()
    @given(message=messages)
    def test_encode_into_appends(self, codec, message):
        out = bytearray(b"prefix")
        appended = codec.encode_into(message, out)
        assert bytes(out[6:]) == codec.encode(message)
        assert appended == len(out) - 6


# ------------------------------------------------------------- decode errors


class TestCompactDecodeErrors:
    def test_rejects_empty(self):
        with pytest.raises(SerializationDecodeError):
            COMPACT.decode(b"")

    def test_rejects_bad_magic(self):
        good = COMPACT.encode({"k": 1})
        with pytest.raises(SerializationDecodeError):
            COMPACT.decode(b"\x00" + good[1:])

    def test_rejects_bad_version(self):
        good = COMPACT.encode({"k": 1})
        with pytest.raises(SerializationDecodeError):
            COMPACT.decode(bytes([good[0], 0x7F]) + good[2:])

    def test_rejects_unknown_kind(self):
        good = COMPACT.encode({"k": 1})
        with pytest.raises(SerializationDecodeError):
            COMPACT.decode(good[:2] + b"\x7f" + good[3:])

    def test_rejects_trailing_garbage(self):
        good = COMPACT.encode({"k": 1})
        with pytest.raises(SerializationDecodeError):
            COMPACT.decode(good + b"\x00")
