"""Tests for the section 6.3 cost comparison helper."""

import pytest

from repro.crypto.costmodel import CryptoCostModel
from repro.security.symmetric_opt import ChannelCostComparison, predicted_savings


class TestPredictedSavings:
    def test_savings_positive_with_paper_calibration(self):
        comparison = predicted_savings(CryptoCostModel(seed=0))
        assert comparison.savings_ms > 0
        # the dominant term is the eliminated entity-side signature (~24.5)
        assert comparison.savings_ms == pytest.approx(
            (24.51 + 6.83) - (0.25 + 1.15), abs=0.01
        )

    def test_totals(self):
        comparison = ChannelCostComparison(24.0, 6.0, 0.3, 1.2)
        assert comparison.signing_total_ms == 30.0
        assert comparison.symmetric_total_ms == 1.5
        assert comparison.savings_ms == 28.5

    def test_scaled_model_scales_savings(self):
        base = predicted_savings(CryptoCostModel(seed=0))
        doubled = predicted_savings(CryptoCostModel(seed=0, scale=2.0))
        assert doubled.savings_ms == pytest.approx(2 * base.savings_ms)
