"""Unit tests for the DoS attacker models (integration in tests/integration)."""

import pytest

from repro import build_deployment
from repro.security.dos import SpuriousTracePublisher, attack_surface


@pytest.fixture
def dep():
    return build_deployment(broker_ids=["b1", "b2", "b3"], seed=1500)


class TestAttackSurface:
    def test_no_clients_anywhere(self, dep):
        surface = attack_surface(dep.network, "b1", "ghost")
        assert surface["brokers_knowing_location"] == []
        assert not surface["location_confined_to_hosting_broker"]

    def test_single_hosting_broker(self, dep):
        client = dep.network.add_client("svc")
        dep.network.connect_client(client, "b2")
        surface = attack_surface(dep.network, "b2", "svc")
        assert surface["brokers_knowing_location"] == ["b2"]
        assert surface["location_confined_to_hosting_broker"]

    def test_wrong_expected_broker_flagged(self, dep):
        client = dep.network.add_client("svc")
        dep.network.connect_client(client, "b2")
        surface = attack_surface(dep.network, "b1", "svc")
        assert not surface["location_confined_to_hosting_broker"]


class TestSpuriousPublisher:
    def test_attempt_counter(self, dep):
        entity = dep.add_traced_entity("victim")
        entity.start("b1")
        dep.sim.run(until=3_000)
        attacker = SpuriousTracePublisher(
            dep.sim, "mallory", dep.network, dep.network.machine("m-mallory")
        )
        attacker.connect("b3")
        dep.sim.process(
            attacker.flood(entity.advertisement.trace_topic, "victim", count=5)
        )
        dep.sim.run(until=10_000)
        # blacklisting cuts the flood short at the violation limit
        limit = dep.network.broker("b3").violation_limit
        assert attacker.attempts >= limit
        assert attacker.attempts <= 5

    def test_flood_after_termination_is_dropped_cheaply(self, dep):
        """After termination the attacker may keep sending, but everything
        is dropped at ingress without reaching constraint checks."""
        entity = dep.add_traced_entity("victim")
        entity.start("b1")
        dep.sim.run(until=3_000)
        attacker = SpuriousTracePublisher(
            dep.sim, "mallory", dep.network, dep.network.machine("m-mallory")
        )
        attacker.connect("b3")
        dep.sim.process(
            attacker.flood(entity.advertisement.trace_topic, "victim", count=50)
        )
        dep.sim.run(until=60_000)
        broker = dep.network.broker("b3")
        assert broker.is_blacklisted("mallory")
        limit = broker.violation_limit
        violations = broker.violation_count("mallory")
        dropped = dep.monitor.count("dos.dropped_blacklisted")
        # termination kicks in at the limit; a couple of in-flight messages
        # may still be judged, everything after is dropped at ingress
        assert limit <= violations <= limit + 5
        assert violations + dropped == attacker.attempts
