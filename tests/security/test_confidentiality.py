"""Tests for trace confidentiality (section 5.1)."""

import pytest

from repro.crypto.keys import SymmetricKey
from repro.errors import DecryptionError
from repro.security.confidentiality import unwrap_trace_body, wrap_trace_body


@pytest.fixture
def trace_key(rng):
    return SymmetricKey.generate(rng)


BODY = {
    "trace_type": "ALLS_WELL",
    "entity_id": "svc-1",
    "trace_topic": "ab" * 16,
    "payload": {"rtt_ms": 5.0},
    "origin_stamp_ms": 123.0,
}


class TestWrapUnwrap:
    def test_roundtrip(self, trace_key, rng):
        wrapped = wrap_trace_body(BODY, trace_key, rng)
        assert wrapped["secured"] is True
        assert unwrap_trace_body(wrapped, trace_key) == BODY

    def test_payload_not_visible_in_wrapped_form(self, trace_key, rng):
        wrapped = wrap_trace_body(BODY, trace_key, rng)
        assert b"ALLS_WELL" not in wrapped["ciphertext"]
        assert "payload" not in wrapped

    def test_routing_topic_stays_visible(self, trace_key, rng):
        wrapped = wrap_trace_body(BODY, trace_key, rng)
        assert wrapped["trace_topic"] == BODY["trace_topic"]

    def test_wrong_key_fails(self, trace_key, rng):
        other = SymmetricKey.generate(rng)
        wrapped = wrap_trace_body(BODY, trace_key, rng)
        with pytest.raises(DecryptionError):
            unwrap_trace_body(wrapped, other)

    def test_tampered_ciphertext_fails(self, trace_key, rng):
        wrapped = wrap_trace_body(BODY, trace_key, rng)
        ct = bytearray(wrapped["ciphertext"])
        ct[20] ^= 0x01
        wrapped["ciphertext"] = bytes(ct)
        with pytest.raises(DecryptionError):
            unwrap_trace_body(wrapped, trace_key)

    def test_unsecured_body_rejected(self, trace_key):
        with pytest.raises(DecryptionError):
            unwrap_trace_body(BODY, trace_key)
        with pytest.raises(DecryptionError):
            unwrap_trace_body({"secured": True}, trace_key)
        with pytest.raises(DecryptionError):
            unwrap_trace_body("not a dict", trace_key)  # type: ignore[arg-type]

    def test_randomized_ciphertext(self, trace_key, rng):
        a = wrap_trace_body(BODY, trace_key, rng)
        b = wrap_trace_body(BODY, trace_key, rng)
        assert a["ciphertext"] != b["ciphertext"]
