"""Tests for the secure key-distribution payload (section 5.1)."""

import pytest

from repro.crypto.keys import SymmetricKey
from repro.errors import DecryptionError
from repro.security.keydist import (
    KeyDistributionPayload,
    build_key_payload,
    open_key_payload,
)


class TestKeyDistribution:
    def test_roundtrip(self, keypair, rng):
        trace_key = SymmetricKey.generate(rng)
        payload = build_key_payload(trace_key, "ab" * 16, keypair.public, rng)
        recovered = open_key_payload(payload, keypair.private)
        assert recovered == trace_key

    def test_carries_algorithm_and_padding(self, keypair, rng):
        """The paper's payload names the algorithm and padding scheme."""
        trace_key = SymmetricKey.generate(rng)
        payload = build_key_payload(trace_key, "00" * 16, keypair.public, rng)
        recovered = open_key_payload(payload, keypair.private)
        assert recovered.algorithm == "AES/CBC"
        assert recovered.padding == "PKCS7"

    def test_only_target_tracker_can_open(self, keypair, second_keypair, rng):
        trace_key = SymmetricKey.generate(rng)
        payload = build_key_payload(trace_key, "00" * 16, keypair.public, rng)
        with pytest.raises(DecryptionError):
            open_key_payload(payload, second_keypair.private)

    def test_dict_roundtrip(self, keypair, rng):
        trace_key = SymmetricKey.generate(rng)
        payload = build_key_payload(trace_key, "cd" * 16, keypair.public, rng)
        restored = KeyDistributionPayload.from_dict(payload.to_dict())
        assert restored.trace_topic_hex == "cd" * 16
        assert open_key_payload(restored, keypair.private) == trace_key

    def test_wire_form_marks_kind(self, keypair, rng):
        trace_key = SymmetricKey.generate(rng)
        payload = build_key_payload(trace_key, "00" * 16, keypair.public, rng)
        assert payload.to_dict()["kind"] == "key_distribution"
