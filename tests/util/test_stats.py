"""Tests for repro.util.stats."""

import math
import statistics

import pytest
from hypothesis import given, strategies as st

from repro.util.stats import RunningStats, StatSummary, percentile, summarize

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestRunningStats:
    def test_mean_and_std(self):
        rs = RunningStats()
        rs.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert rs.mean == pytest.approx(5.0)
        assert rs.std_dev == pytest.approx(statistics.stdev([2, 4, 4, 4, 5, 5, 7, 9]))

    def test_std_error(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        rs = RunningStats()
        rs.extend(samples)
        assert rs.std_error == pytest.approx(
            statistics.stdev(samples) / math.sqrt(4)
        )

    def test_min_max(self):
        rs = RunningStats()
        rs.extend([3.0, -1.0, 10.0])
        assert rs.minimum == -1.0
        assert rs.maximum == 10.0

    def test_single_sample(self):
        rs = RunningStats()
        rs.add(42.0)
        assert rs.mean == 42.0
        assert rs.std_dev == 0.0
        assert rs.std_error == 0.0

    def test_empty_raises(self):
        rs = RunningStats()
        with pytest.raises(ValueError):
            _ = rs.mean
        with pytest.raises(ValueError):
            rs.summary()

    def test_merge_matches_combined(self):
        xs = [1.0, 5.0, 2.0]
        ys = [10.0, 0.5, 3.0, 7.0]
        a, b, combined = RunningStats(), RunningStats(), RunningStats()
        a.extend(xs)
        b.extend(ys)
        combined.extend(xs + ys)
        merged = a.merge(b)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean)
        assert merged.std_dev == pytest.approx(combined.std_dev)
        assert merged.minimum == combined.minimum
        assert merged.maximum == combined.maximum

    def test_merge_with_empty(self):
        a = RunningStats()
        b = RunningStats()
        b.extend([1.0, 2.0])
        assert a.merge(b).mean == pytest.approx(1.5)
        assert b.merge(a).mean == pytest.approx(1.5)

    @given(st.lists(finite_floats, min_size=2, max_size=50))
    def test_matches_statistics_module(self, samples):
        rs = RunningStats()
        rs.extend(samples)
        assert rs.mean == pytest.approx(statistics.fmean(samples), abs=1e-6)
        assert rs.std_dev == pytest.approx(statistics.stdev(samples), abs=1e-5)

    @given(
        st.lists(finite_floats, min_size=1, max_size=20),
        st.lists(finite_floats, min_size=1, max_size=20),
    )
    def test_merge_property(self, xs, ys):
        a, b, c = RunningStats(), RunningStats(), RunningStats()
        a.extend(xs)
        b.extend(ys)
        c.extend(xs + ys)
        merged = a.merge(b)
        assert merged.mean == pytest.approx(c.mean, abs=1e-6)
        assert merged.variance == pytest.approx(c.variance, rel=1e-6, abs=1e-6)


class TestSummary:
    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert isinstance(summary, StatSummary)
        assert summary.count == 3
        assert summary.mean == pytest.approx(2.0)

    def test_row_format(self):
        summary = summarize([72.68, 72.68])
        row = summary.row("2 hops")
        assert "2 hops" in row
        assert "72.68" in row

    def test_header_aligns_with_row(self):
        header = StatSummary.header()
        assert "Mean" in header and "Std.Dev" in header


class TestPercentile:
    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_extremes(self):
        data = [5.0, 1.0, 9.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 9.0

    def test_single_sample(self):
        assert percentile([7.0], 99) == 7.0

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    @given(st.lists(finite_floats, min_size=1, max_size=30))
    def test_bounded_by_min_max(self, samples):
        for q in (0, 25, 50, 75, 100):
            p = percentile(samples, q)
            assert min(samples) <= p <= max(samples)
