"""Tests for the canonical serialization layer."""

import pytest
from hypothesis import given, strategies as st

from repro.util.serialization import canonical_decode, canonical_encode

# strategy for canonically-encodable values
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**30), max_value=10**30),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
    ),
    max_leaves=20,
)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            12345678901234567890,
            0.0,
            -2.5,
            "",
            "hello",
            "uniçode ☃",
            b"",
            b"\x00\xff" * 10,
            [],
            [1, "two", None],
            {},
            {"a": 1, "b": [True, {"c": b"x"}]},
        ],
    )
    def test_examples(self, value):
        decoded = canonical_decode(canonical_encode(value))
        assert decoded == value
        # tuples decode as lists — covered separately

    def test_tuple_decodes_as_list(self):
        assert canonical_decode(canonical_encode((1, 2))) == [1, 2]

    def test_float_bit_exact(self):
        value = 0.1 + 0.2
        assert canonical_decode(canonical_encode(value)) == value

    def test_bool_distinct_from_int(self):
        assert canonical_encode(True) != canonical_encode(1)
        assert canonical_encode(False) != canonical_encode(0)

    @given(values)
    def test_roundtrip_property(self, value):
        encoded = canonical_encode(value)
        decoded = canonical_decode(encoded)
        assert decoded == _tuples_to_lists(value)


class TestCanonicality:
    def test_dict_order_irrelevant(self):
        a = canonical_encode({"x": 1, "y": 2})
        b = canonical_encode({"y": 2, "x": 1})
        assert a == b

    def test_nested_dict_order_irrelevant(self):
        a = canonical_encode({"outer": {"x": 1, "y": 2}})
        b = canonical_encode({"outer": {"y": 2, "x": 1}})
        assert a == b

    def test_distinct_values_distinct_encodings(self):
        seen = set()
        for value in [None, True, False, 0, 1, "", "0", b"", b"0", [], {}, [0], {"a": 0}]:
            encoding = canonical_encode(value)
            assert encoding not in seen
            seen.add(encoding)

    @given(values, values)
    def test_injective_property(self, a, b):
        if _tuples_to_lists(a) != _tuples_to_lists(b):
            assert canonical_encode(a) != canonical_encode(b)


class TestErrors:
    def test_rejects_non_str_dict_keys(self):
        with pytest.raises(TypeError):
            canonical_encode({1: "x"})

    def test_rejects_unsupported_types(self):
        with pytest.raises(TypeError):
            canonical_encode(object())
        with pytest.raises(TypeError):
            canonical_encode({"a": set()})

    def test_rejects_trailing_bytes(self):
        data = canonical_encode(1) + b"garbage"
        with pytest.raises(ValueError):
            canonical_decode(data)

    def test_rejects_truncated(self):
        data = canonical_encode("hello world")
        with pytest.raises(ValueError):
            canonical_decode(data[:-3])

    def test_rejects_unknown_tag(self):
        with pytest.raises(ValueError):
            canonical_decode(b"Z")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            canonical_decode(b"")

    def test_rejects_unsorted_dict_keys(self):
        # hand-craft a dict with keys out of canonical order
        good = canonical_encode({"a": 1, "b": 2})
        # encode b-then-a manually by swapping entries
        a_entry = canonical_encode("a") + canonical_encode(1)
        b_entry = canonical_encode("b") + canonical_encode(2)
        bad = b"d" + b_entry + a_entry + b"e"
        assert good != bad
        with pytest.raises(ValueError):
            canonical_decode(bad)

    def test_rejects_unterminated_list(self):
        with pytest.raises(ValueError):
            canonical_decode(b"l" + canonical_encode(1))


def _tuples_to_lists(value):
    if isinstance(value, (list, tuple)):
        return [_tuples_to_lists(v) for v in value]
    if isinstance(value, dict):
        return {k: _tuples_to_lists(v) for k, v in value.items()}
    return value
