"""Tests for repro.util.identifiers."""

import pytest
from hypothesis import given, strategies as st

from repro.util.identifiers import (
    EntityId,
    RequestId,
    SequenceCounter,
    SessionId,
    UUID128,
    UUIDGenerator,
)


class TestUUID128:
    def test_hex_is_32_digits(self):
        assert UUID128(0).hex == "0" * 32
        assert UUID128(1).hex == "0" * 31 + "1"

    def test_roundtrip_hex(self):
        u = UUID128(0xDEADBEEF << 64)
        assert UUID128.from_hex(u.hex) == u

    def test_from_hex_tolerates_dashes(self):
        u = UUID128(2**100 + 17)
        dashed = u.hex[:8] + "-" + u.hex[8:]
        assert UUID128.from_hex(dashed) == u

    def test_roundtrip_bytes(self):
        u = UUID128((1 << 127) | 42)
        assert UUID128.from_bytes(u.bytes) == u
        assert len(u.bytes) == 16

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            UUID128(1 << 128)
        with pytest.raises(ValueError):
            UUID128(-1)

    def test_from_hex_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            UUID128.from_hex("abcd")

    def test_from_bytes_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            UUID128.from_bytes(b"\x00" * 15)

    def test_hashable_and_equal_by_value(self):
        assert UUID128(7) == UUID128(7)
        assert len({UUID128(7), UUID128(7), UUID128(8)}) == 2

    @given(st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_hex_roundtrip_property(self, value):
        assert UUID128.from_hex(UUID128(value).hex).value == value


class TestUUIDGenerator:
    def test_deterministic_given_seed(self):
        gen1, gen2 = UUIDGenerator(5), UUIDGenerator(5)
        assert [gen1.next() for _ in range(5)] == [gen2.next() for _ in range(5)]

    def test_different_seeds_differ(self):
        assert UUIDGenerator(1).next() != UUIDGenerator(2).next()

    def test_never_repeats(self):
        gen = UUIDGenerator(0)
        seen = {gen.next() for _ in range(1000)}
        assert len(seen) == 1000

    def test_iter_protocol(self):
        gen = UUIDGenerator(1)
        it = iter(gen)
        first = next(it)
        assert isinstance(first, UUID128)


class TestEntityId:
    def test_basic(self):
        assert str(EntityId("svc-1")) == "svc-1"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EntityId("")

    def test_rejects_slash(self):
        with pytest.raises(ValueError):
            EntityId("a/b")

    def test_equality(self):
        assert EntityId("x") == EntityId("x")
        assert EntityId("x") != EntityId("y")


class TestSequenceCounter:
    def test_monotone(self):
        counter = SequenceCounter()
        values = [counter.next() for _ in range(10)]
        assert values == list(range(10))

    def test_peek_does_not_advance(self):
        counter = SequenceCounter()
        counter.next()
        assert counter.peek() == 1
        assert counter.peek() == 1
        assert counter.next() == 1

    def test_request_ids(self):
        counter = SequenceCounter()
        r0 = counter.next_request_id()
        r1 = counter.next_request_id()
        assert isinstance(r0, RequestId)
        assert r0 != r1
        assert str(r0) == "req-0"


class TestSessionId:
    def test_topic_segment_is_hex(self):
        s = SessionId(UUID128(0xABC))
        assert s.topic_segment == UUID128(0xABC).hex
        assert "/" not in s.topic_segment

    def test_str_is_prefixed(self):
        assert str(SessionId(UUID128(1))).startswith("sess-")
