"""Tests for repro.util.clock."""

import pytest

from repro.util.clock import (
    NTP_SKEW_MAX_MS,
    NTP_SKEW_MIN_MS,
    NTPSkewModel,
    SkewedClock,
    VirtualClock,
    WallClock,
)


class TestVirtualClock:
    def test_starts_at_given_time(self):
        assert VirtualClock().now() == 0.0
        assert VirtualClock(100.0).now() == 100.0

    def test_advance_to(self):
        clock = VirtualClock()
        clock.advance_to(5.0)
        assert clock.now() == 5.0

    def test_advance_by(self):
        clock = VirtualClock(10.0)
        clock.advance_by(2.5)
        assert clock.now() == 12.5

    def test_cannot_go_backwards(self):
        clock = VirtualClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.0)
        with pytest.raises(ValueError):
            clock.advance_by(-1.0)

    def test_advance_to_same_time_ok(self):
        clock = VirtualClock(10.0)
        clock.advance_to(10.0)
        assert clock.now() == 10.0


class TestWallClock:
    def test_monotone_nonnegative(self):
        clock = WallClock()
        a = clock.now()
        b = clock.now()
        assert 0.0 <= a <= b


class TestSkewedClock:
    def test_positive_and_negative_offsets(self):
        reference = VirtualClock(1000.0)
        assert SkewedClock(reference, 50.0).now() == 1050.0
        assert SkewedClock(reference, -50.0).now() == 950.0

    def test_tracks_reference(self):
        reference = VirtualClock()
        skewed = SkewedClock(reference, 10.0)
        reference.advance_to(5.0)
        assert skewed.now() == 15.0


class TestNTPSkewModel:
    def test_offsets_within_paper_band(self):
        model = NTPSkewModel(seed=1)
        for _ in range(200):
            offset = model.sample_offset()
            assert NTP_SKEW_MIN_MS <= abs(offset) <= NTP_SKEW_MAX_MS

    def test_both_signs_occur(self):
        model = NTPSkewModel(seed=2)
        offsets = [model.sample_offset() for _ in range(100)]
        assert any(o > 0 for o in offsets)
        assert any(o < 0 for o in offsets)

    def test_p_synced_one_means_zero_offsets(self):
        model = NTPSkewModel(seed=3, p_synced=1.0)
        assert all(model.sample_offset() == 0.0 for _ in range(20))

    def test_deterministic_given_seed(self):
        a = NTPSkewModel(seed=9)
        b = NTPSkewModel(seed=9)
        assert [a.sample_offset() for _ in range(10)] == [
            b.sample_offset() for _ in range(10)
        ]

    def test_clock_for_node(self):
        model = NTPSkewModel(seed=4)
        reference = VirtualClock(500.0)
        clock = model.clock_for_node(reference)
        assert NTP_SKEW_MIN_MS <= abs(clock.now() - 500.0) <= NTP_SKEW_MAX_MS

    def test_tolerance_is_max_skew(self):
        assert NTPSkewModel(seed=0).tolerance_ms == NTP_SKEW_MAX_MS

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            NTPSkewModel(min_skew_ms=-1)
        with pytest.raises(ValueError):
            NTPSkewModel(min_skew_ms=50, max_skew_ms=10)
        with pytest.raises(ValueError):
            NTPSkewModel(p_synced=1.5)
