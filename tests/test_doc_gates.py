"""Tier-1 mirrors of the CI doc gates (tools/check_metric_docs.py,
tools/check_docstrings.py, tools/check_experiments.py), so drift fails
locally before it fails CI."""

import importlib.util
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def _load(tool_name):
    spec = importlib.util.spec_from_file_location(
        tool_name, REPO_ROOT / "tools" / f"{tool_name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def metric_docs():
    return _load("check_metric_docs")


@pytest.fixture(scope="module")
def docstrings():
    return _load("check_docstrings")


@pytest.fixture(scope="module")
def experiments():
    return _load("check_experiments")


class TestMetricDocs:
    def test_gate_is_clean(self, metric_docs):
        assert metric_docs.main() == 0

    def test_code_scan_sees_known_instruments(self, metric_docs):
        names, prefixes = metric_docs.collect_code_names()
        assert "broker.msgs.delivered" in names
        assert "auth.token.cache.hit" in names
        # the constant-resolved gauge and an f-string family prefix
        assert "broker.interest.patterns" in names
        assert any(p.startswith("crypto.ms.") for p in prefixes)

    def test_doc_scan_sees_placeholders(self, metric_docs):
        exact, placeholders = metric_docs.collect_doc_names()
        assert "transport.bytes.sent" in exact
        assert "crypto.ms." in placeholders
        # journal/monitor event names are excluded, not instruments
        assert "trace.suppressed_no_subscriber" not in exact


class TestDocstrings:
    def test_gate_is_clean(self, docstrings):
        assert docstrings.main() == 0

    def test_covers_the_promised_packages(self, docstrings):
        assert set(docstrings.COVERED) == {
            "analytics",
            "auth",
            "bench",
            "campaigns",
            "faults",
            "messaging",
            "obs",
        }


class TestExperiments:
    def test_gate_is_clean(self, experiments):
        assert experiments.process(write=False) == 0

    def test_cited_benches_exist_and_are_classified(self, experiments):
        text = experiments.EXPERIMENTS.read_text(encoding="utf-8")
        cited = experiments.cited_in(text)
        assert "bench_table3_hops.py" in cited
        assert "bench_scale.py" in cited
        for name in cited:
            assert (experiments.BENCH_DIR / name).exists()
        assert experiments.bench_style(
            experiments.BENCH_DIR / "bench_table3_hops.py"
        ) == "pytest"
        assert experiments.bench_style(
            experiments.BENCH_DIR / "bench_scale.py"
        ) == "script"

    def test_script_style_footer_carries_the_warning(self, experiments):
        footer = experiments.footer_block(["bench_scale.py"])
        assert "not collected by `pytest benchmarks/`" in footer
        assert "PYTHONPATH=src python benchmarks/bench_scale.py" in footer
