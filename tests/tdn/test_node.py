"""Tests for TDN nodes and the replicated cluster."""

import pytest

from repro.auth.credentials import EntityCredentials
from repro.crypto.certificates import CertificateAuthority
from repro.crypto.costmodel import CryptoCostModel
from repro.errors import DiscoveryError, RegistrationError
from repro.sim.engine import Simulator
from repro.sim.machine import Machine
from repro.tdn.advertisement import TopicCreationRequest
from repro.tdn.node import TDNCluster
from repro.tdn.query import DiscoveryQuery, DiscoveryRestrictions, trace_descriptor
from repro.util.identifiers import RequestId


@pytest.fixture
def setup(rng):
    sim = Simulator()
    ca = CertificateAuthority("ca", rng)
    machines = [
        Machine(sim, f"m{i}", CryptoCostModel.free(), rng) for i in range(3)
    ]
    cluster = TDNCluster(sim, ca, machines, uuid_seed=42)
    entity = EntityCredentials.issue("svc-1", ca, rng)
    tracker = EntityCredentials.issue("tracker-1", ca, rng)
    return sim, ca, cluster, entity, tracker


def creation_request(entity, restrictions=None, lifetime=1_000_000.0):
    request = TopicCreationRequest(
        credentials=entity.certificate,
        descriptor=trace_descriptor(entity.subject),
        restrictions=restrictions or DiscoveryRestrictions.open_to_authenticated(),
        lifetime_ms=lifetime,
        request_id=RequestId(1),
    )
    return request, entity.sign(request.signing_payload())


class TestTopicCreation:
    def test_creates_signed_advertisement(self, setup):
        sim, ca, cluster, entity, _ = setup
        request, signature = creation_request(entity)
        ad = sim.run_process(cluster.create_topic(request, signature))
        assert ad.owner_subject == "svc-1"
        assert ad.descriptor == trace_descriptor("svc-1")
        assert cluster.nodes[0].verify_advertisement(ad)

    def test_uuid_minted_at_tdn_is_unique(self, setup):
        sim, ca, cluster, entity, _ = setup
        topics = set()
        for i in range(5):
            request, signature = creation_request(entity)
            ad = sim.run_process(cluster.create_topic(request, signature))
            topics.add(ad.trace_topic)
        assert len(topics) == 5

    def test_replicated_to_peers(self, setup):
        sim, ca, cluster, entity, _ = setup
        request, signature = creation_request(entity)
        ad = sim.run_process(cluster.create_topic(request, signature))
        sim.run()  # let replication callbacks fire
        for node in cluster.nodes:
            assert node.store.get(ad.trace_topic, sim.now) is not None

    def test_rejects_bad_signature(self, setup):
        sim, ca, cluster, entity, tracker = setup
        request, _ = creation_request(entity)
        wrong_signature = tracker.sign(request.signing_payload())
        with pytest.raises(RegistrationError):
            sim.run_process(cluster.create_topic(request, wrong_signature))

    def test_rejects_signature_over_other_fields(self, setup):
        sim, ca, cluster, entity, _ = setup
        request, _ = creation_request(entity)
        signature = entity.sign({"something": "else"})
        with pytest.raises(RegistrationError):
            sim.run_process(cluster.create_topic(request, signature))

    def test_rejects_untrusted_credentials(self, setup, rng):
        sim, ca, cluster, entity, _ = setup
        rogue_ca = CertificateAuthority("rogue", rng)
        rogue = EntityCredentials.issue("svc-1", rogue_ca, rng)
        request, signature = creation_request(rogue)
        with pytest.raises(RegistrationError):
            sim.run_process(cluster.create_topic(request, signature))


class TestDiscovery:
    def _create(self, sim, cluster, entity, restrictions=None):
        request, signature = creation_request(entity, restrictions)
        ad = sim.run_process(cluster.create_topic(request, signature))
        sim.run()
        return ad

    def test_authorized_discovery(self, setup):
        sim, ca, cluster, entity, tracker = setup
        ad = self._create(sim, cluster, entity)
        found = sim.run_process(
            cluster.discover(DiscoveryQuery.for_entity("svc-1"), tracker.certificate)
        )
        assert found is not None
        assert found.trace_topic == ad.trace_topic

    def test_unauthorized_gets_silence(self, setup):
        sim, ca, cluster, entity, tracker = setup
        self._create(
            sim, cluster, entity, DiscoveryRestrictions.allow_only("someone-else")
        )
        found = sim.run_process(
            cluster.discover(DiscoveryQuery.for_entity("svc-1"), tracker.certificate)
        )
        assert found is None  # silently ignored, not an error

    def test_unknown_entity_gets_silence(self, setup):
        sim, ca, cluster, entity, tracker = setup
        found = sim.run_process(
            cluster.discover(DiscoveryQuery.for_entity("ghost"), tracker.certificate)
        )
        assert found is None

    def test_no_credentials_gets_silence(self, setup):
        sim, ca, cluster, entity, tracker = setup
        self._create(sim, cluster, entity)
        found = sim.run_process(
            cluster.discover(DiscoveryQuery.for_entity("svc-1"), None)
        )
        assert found is None

    def test_expired_topic_not_discoverable(self, setup):
        sim, ca, cluster, entity, tracker = setup
        request, signature = creation_request(entity, lifetime=50.0)
        sim.run_process(cluster.create_topic(request, signature))
        sim.run(until=200.0)
        found = sim.run_process(
            cluster.discover(DiscoveryQuery.for_entity("svc-1"), tracker.certificate)
        )
        assert found is None


class TestFailureTolerance:
    def test_survives_node_failure(self, setup):
        sim, ca, cluster, entity, tracker = setup
        request, signature = creation_request(entity)
        ad = sim.run_process(cluster.create_topic(request, signature))
        sim.run()
        cluster.nodes[0].fail()
        found = sim.run_process(
            cluster.discover(DiscoveryQuery.for_entity("svc-1"), tracker.certificate)
        )
        assert found is not None
        assert found.trace_topic == ad.trace_topic

    def test_all_nodes_down_raises(self, setup):
        sim, ca, cluster, entity, tracker = setup
        for node in cluster.nodes:
            node.fail()
        with pytest.raises(DiscoveryError):
            sim.run_process(
                cluster.discover(DiscoveryQuery.for_entity("x"), tracker.certificate)
            )
        with pytest.raises(DiscoveryError):
            request, signature = creation_request(entity)
            sim.run_process(cluster.create_topic(request, signature))

    def test_recovery(self, setup):
        sim, ca, cluster, entity, tracker = setup
        cluster.nodes[0].fail()
        cluster.nodes[0].recover()
        assert len(cluster.live_nodes()) == 3

    def test_creation_fails_over_to_live_node(self, setup):
        sim, ca, cluster, entity, tracker = setup
        cluster.nodes[0].fail()
        request, signature = creation_request(entity)
        ad = sim.run_process(cluster.create_topic(request, signature))
        assert ad.issuing_tdn == "tdn-1"

    def test_replication_skips_failed_nodes(self, setup):
        sim, ca, cluster, entity, _ = setup
        cluster.nodes[2].fail()
        request, signature = creation_request(entity)
        ad = sim.run_process(cluster.create_topic(request, signature))
        sim.run()
        assert cluster.nodes[1].store.get(ad.trace_topic, sim.now) is not None
        assert cluster.nodes[2].store.get(ad.trace_topic, sim.now) is None


class TestReplicationRace:
    def test_discovery_before_replication_completes(self, setup):
        """Replication is asynchronous: a node that fails over *before*
        the replication callback lands will not find the topic yet, and
        will find it afterwards.  Documents the (bounded) inconsistency
        window of the replicated store."""
        sim, ca, cluster, entity, tracker = setup
        request, signature = creation_request(entity)
        # drive the creation process manually, without draining the heap
        proc = sim.process(cluster.create_topic(request, signature))
        while not proc.triggered:
            assert sim.step()
        ad = proc.value
        # at this instant the advertisement is stored at tdn-0 only
        cluster.nodes[0].fail()
        found = sim.run_process(
            cluster.discover(DiscoveryQuery.for_entity("svc-1"), tracker.certificate)
        )
        # tdn-1 may or may not have the replica yet depending on callback
        # ordering; after the replication delay it definitely does
        sim.run(until=sim.now + cluster.nodes[0].replication_delay_ms + 1.0)
        found_later = sim.run_process(
            cluster.discover(DiscoveryQuery.for_entity("svc-1"), tracker.certificate)
        )
        assert found_later is not None
        assert found_later.trace_topic == ad.trace_topic
