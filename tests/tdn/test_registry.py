"""Tests for the TDN advertisement store."""

import pytest

from repro.crypto.signing import SignedEnvelope
from repro.tdn.advertisement import TopicAdvertisement, TopicLifetime
from repro.tdn.query import DiscoveryRestrictions, trace_descriptor
from repro.tdn.registry import AdvertisementStore
from repro.util.identifiers import UUID128


def make_ad(keypair, topic_value, entity="svc", created=0.0, duration=1000.0):
    return TopicAdvertisement(
        trace_topic=UUID128(topic_value),
        descriptor=trace_descriptor(entity),
        owner_subject=entity,
        owner_public_key=keypair.public,
        restrictions=DiscoveryRestrictions.open_to_authenticated(),
        lifetime=TopicLifetime(created_ms=created, duration_ms=duration),
        issuing_tdn="tdn-0",
        signature=SignedEnvelope(payload={}, signature=b"", signer_fingerprint=b""),
    )


class TestStore:
    def test_put_get(self, keypair):
        store = AdvertisementStore()
        ad = make_ad(keypair, 1)
        store.put(ad)
        assert store.get(UUID128(1), now_ms=10.0) is ad
        assert len(store) == 1

    def test_get_missing(self, keypair):
        assert AdvertisementStore().get(UUID128(9), 0.0) is None

    def test_expired_treated_as_absent(self, keypair):
        store = AdvertisementStore()
        store.put(make_ad(keypair, 1, duration=100.0))
        assert store.get(UUID128(1), now_ms=50.0) is not None
        assert store.get(UUID128(1), now_ms=101.0) is None
        assert len(store) == 0  # lazily reaped

    def test_find_by_descriptor(self, keypair):
        store = AdvertisementStore()
        store.put(make_ad(keypair, 1, entity="a"))
        store.put(make_ad(keypair, 2, entity="b"))
        found = store.find_by_descriptor(trace_descriptor("a"), 0.0)
        assert [ad.trace_topic for ad in found] == [UUID128(1)]

    def test_reregistration_newest_first(self, keypair):
        """A re-registered topic (after compromise) shadows the old one."""
        store = AdvertisementStore()
        store.put(make_ad(keypair, 1, entity="a", created=0.0))
        store.put(make_ad(keypair, 2, entity="a", created=50.0))
        found = store.find_by_descriptor(trace_descriptor("a"), 60.0)
        assert [ad.trace_topic for ad in found] == [UUID128(2), UUID128(1)]

    def test_put_same_topic_replaces(self, keypair):
        store = AdvertisementStore()
        store.put(make_ad(keypair, 1, duration=100.0))
        store.put(make_ad(keypair, 1, duration=5000.0))
        assert len(store) == 1
        assert store.get(UUID128(1), now_ms=2000.0) is not None

    def test_remove(self, keypair):
        store = AdvertisementStore()
        store.put(make_ad(keypair, 1))
        store.remove(UUID128(1))
        assert store.get(UUID128(1), 0.0) is None
        assert store.find_by_descriptor(trace_descriptor("svc"), 0.0) == []

    def test_reap_expired(self, keypair):
        store = AdvertisementStore()
        store.put(make_ad(keypair, 1, duration=10.0))
        store.put(make_ad(keypair, 2, duration=1000.0))
        assert store.reap_expired(now_ms=500.0) == 1
        assert len(store) == 1

    def test_topics_sorted(self, keypair):
        store = AdvertisementStore()
        store.put(make_ad(keypair, 5, entity="a"))
        store.put(make_ad(keypair, 2, entity="b"))
        assert store.topics() == [UUID128(2), UUID128(5)]


class TestLifetime:
    def test_alive_window(self):
        lt = TopicLifetime(created_ms=10.0, duration_ms=100.0)
        assert not lt.alive_at(9.0)
        assert lt.alive_at(10.0)
        assert lt.alive_at(110.0)
        assert not lt.alive_at(110.1)
        assert lt.expires_ms == 110.0

    def test_dict_roundtrip(self):
        lt = TopicLifetime(5.0, 50.0)
        assert TopicLifetime.from_dict(lt.to_dict()) == lt
