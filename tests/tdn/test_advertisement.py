"""Tests for topic advertisements and creation requests."""

import pytest

from repro.crypto.signing import sign_payload
from repro.errors import DiscoveryError
from repro.tdn.advertisement import (
    TopicAdvertisement,
    TopicCreationRequest,
    TopicLifetime,
)
from repro.tdn.query import DiscoveryRestrictions, trace_descriptor
from repro.util.identifiers import EntityId, RequestId, UUID128


def make_advertisement(keypair, tdn_pair, descriptor=None):
    descriptor = descriptor or trace_descriptor("svc")
    fields = {
        "trace_topic": UUID128(9).hex,
        "descriptor": descriptor,
        "owner_subject": "svc",
        "owner_n": keypair.public.n,
        "owner_e": keypair.public.e,
        "restrictions": DiscoveryRestrictions.allow_only("friend").to_dict(),
        "lifetime": TopicLifetime(100.0, 5_000.0).to_dict(),
        "issuing_tdn": "tdn-0",
    }
    return TopicAdvertisement(
        trace_topic=UUID128(9),
        descriptor=descriptor,
        owner_subject="svc",
        owner_public_key=keypair.public,
        restrictions=DiscoveryRestrictions.allow_only("friend"),
        lifetime=TopicLifetime(100.0, 5_000.0),
        issuing_tdn="tdn-0",
        signature=sign_payload(fields, tdn_pair.private),
    )


class TestAdvertisement:
    def test_dict_roundtrip(self, keypair, second_keypair):
        ad = make_advertisement(keypair, second_keypair)
        restored = TopicAdvertisement.from_dict(ad.to_dict())
        assert restored.trace_topic == ad.trace_topic
        assert restored.descriptor == ad.descriptor
        assert restored.owner_public_key == ad.owner_public_key
        assert restored.restrictions == ad.restrictions
        assert restored.lifetime == ad.lifetime
        assert restored.signed_fields() == ad.signed_fields()

    def test_entity_id_from_descriptor(self, keypair, second_keypair):
        ad = make_advertisement(keypair, second_keypair)
        assert ad.entity_id == EntityId("svc")

    def test_entity_id_rejects_foreign_descriptor(self, keypair, second_keypair):
        ad = make_advertisement(
            keypair, second_keypair, descriptor="Something/Else/svc"
        )
        with pytest.raises(DiscoveryError):
            _ = ad.entity_id

    def test_signature_covers_all_fields(self, keypair, second_keypair):
        """Changing any field invalidates the signed_fields mapping."""
        ad = make_advertisement(keypair, second_keypair)
        fields = ad.signed_fields()
        assert fields["trace_topic"] == ad.trace_topic.hex
        assert fields["owner_n"] == keypair.public.n
        assert fields["issuing_tdn"] == "tdn-0"
        assert fields == ad.signature.payload


class TestCreationRequest:
    def test_signing_payload_binds_credentials(self, ca, keypair):
        cert = ca.issue("svc", keypair.public)
        request = TopicCreationRequest(
            credentials=cert,
            descriptor=trace_descriptor("svc"),
            restrictions=DiscoveryRestrictions.open_to_authenticated(),
            lifetime_ms=1_000.0,
            request_id=RequestId(5),
        )
        payload = request.signing_payload()
        assert payload["credential_fingerprint"] == cert.fingerprint()
        assert payload["descriptor"] == "Availability/Traces/svc"
        assert payload["request_id"] == 5
