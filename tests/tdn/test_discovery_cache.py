"""The TDN discovery cache: hits, invalidation, expiry, and store versioning."""

import pytest

from repro.auth.credentials import EntityCredentials
from repro.crypto.certificates import CertificateAuthority
from repro.crypto.costmodel import CryptoCostModel
from repro.crypto.signing import SignedEnvelope
from repro.sim.engine import Simulator
from repro.sim.machine import Machine
from repro.tdn.advertisement import (
    TopicAdvertisement,
    TopicCreationRequest,
    TopicLifetime,
)
from repro.tdn.cache import MISS, DiscoveryCache
from repro.tdn.node import TDNCluster
from repro.tdn.query import (
    DiscoveryQuery,
    DiscoveryRestrictions,
    trace_descriptor,
)
from repro.tdn.registry import AdvertisementStore
from repro.util.identifiers import RequestId, UUID128


def make_ad(keypair, topic_value, entity="svc", created=0.0, duration=1000.0):
    return TopicAdvertisement(
        trace_topic=UUID128(topic_value),
        descriptor=trace_descriptor(entity),
        owner_subject=entity,
        owner_public_key=keypair.public,
        restrictions=DiscoveryRestrictions.open_to_authenticated(),
        lifetime=TopicLifetime(created_ms=created, duration_ms=duration),
        issuing_tdn="tdn-0",
        signature=SignedEnvelope(payload={}, signature=b"", signer_fingerprint=b""),
    )


class TestDiscoveryCacheUnit:
    def test_empty_lookup_is_miss(self):
        cache = DiscoveryCache()
        key = DiscoveryCache.key("one", "svc", None)
        assert cache.lookup(key, store_version=0, now_ms=0.0) is MISS
        assert cache.stats()["misses"] == 1

    def test_store_then_hit(self):
        cache = DiscoveryCache()
        key = DiscoveryCache.key("one", "svc", None)
        cache.store(key, store_version=3, valid_until_ms=100.0, result="answer")
        assert cache.lookup(key, store_version=3, now_ms=50.0) == "answer"
        assert cache.stats()["hits"] == 1

    def test_version_change_invalidates(self):
        cache = DiscoveryCache()
        key = DiscoveryCache.key("one", "svc", None)
        cache.store(key, store_version=3, valid_until_ms=100.0, result="answer")
        assert cache.lookup(key, store_version=4, now_ms=50.0) is MISS
        assert cache.stats()["invalidations"] == 1
        assert len(cache) == 0  # the stale entry is dropped, not retried

    def test_time_horizon_invalidates(self):
        cache = DiscoveryCache()
        key = DiscoveryCache.key("one", "svc", None)
        cache.store(key, store_version=3, valid_until_ms=100.0, result="answer")
        assert cache.lookup(key, store_version=3, now_ms=101.0) is MISS
        assert cache.stats()["invalidations"] == 1

    def test_lru_eviction(self):
        cache = DiscoveryCache(capacity=2)
        for name in ("a", "b", "c"):
            cache.store(
                DiscoveryCache.key("one", name, None), 0, 1e9, name
            )
        assert len(cache) == 2
        assert cache.lookup(DiscoveryCache.key("one", "a", None), 0, 0.0) is MISS
        assert cache.lookup(DiscoveryCache.key("one", "c", None), 0, 0.0) == "c"

    def test_key_pins_exact_certificate(self, keypair, second_keypair, rng):
        ca = CertificateAuthority("ca", rng)
        first = ca.issue("tracker", keypair.public)
        reissued = ca.issue("tracker", second_keypair.public)
        key_a = DiscoveryCache.key("one", "svc", first)
        key_b = DiscoveryCache.key("one", "svc", reissued)
        assert key_a != key_b  # serial differs: no aliasing across re-issues

    def test_clear_drops_everything(self):
        cache = DiscoveryCache()
        cache.store(DiscoveryCache.key("one", "svc", None), 0, 1e9, "answer")
        cache.clear()
        assert len(cache) == 0


class TestStoreVersion:
    def test_put_bumps_version(self, keypair):
        store = AdvertisementStore()
        start = store.version
        store.put(make_ad(keypair, 1))
        assert store.version == start + 1

    def test_replacement_bumps_version(self, keypair):
        store = AdvertisementStore()
        store.put(make_ad(keypair, 1, duration=100.0))
        before = store.version
        store.put(make_ad(keypair, 1, duration=500.0))
        assert store.version > before

    def test_remove_bumps_version_only_when_present(self, keypair):
        store = AdvertisementStore()
        store.put(make_ad(keypair, 1))
        before = store.version
        store.remove(UUID128(1))
        assert store.version == before + 1
        unchanged = store.version
        store.remove(UUID128(1))
        assert store.version == unchanged


@pytest.fixture
def setup(rng):
    sim = Simulator()
    ca = CertificateAuthority("ca", rng)
    cost_model = CryptoCostModel.free()
    machines = [Machine(sim, f"m{i}", cost_model, rng) for i in range(2)]
    cluster = TDNCluster(sim, ca, machines, uuid_seed=7)
    # route crypto.ops.* counters to the cluster registry so tests can
    # observe which discovery paths still pay certificate verifications
    cost_model.bind_metrics(cluster.monitor.metrics)
    entity = EntityCredentials.issue("svc-1", ca, rng)
    tracker = EntityCredentials.issue("tracker-1", ca, rng)
    return sim, ca, cluster, entity, tracker


def create_topic(sim, cluster, entity, lifetime=1_000_000.0):
    request = TopicCreationRequest(
        credentials=entity.certificate,
        descriptor=trace_descriptor(entity.subject),
        restrictions=DiscoveryRestrictions.open_to_authenticated(),
        lifetime_ms=lifetime,
        request_id=RequestId(1),
    )
    ad = sim.run_process(
        cluster.create_topic(request, entity.sign(request.signing_payload()))
    )
    sim.run()
    return ad


class TestDiscoveryIntegration:
    def _counter(self, cluster, name):
        return cluster.monitor.metrics.counter(name).value

    def test_repeat_discovery_hits_cache(self, setup):
        sim, ca, cluster, entity, tracker = setup
        create_topic(sim, cluster, entity)
        query = DiscoveryQuery.for_entity("svc-1")
        first = sim.run_process(cluster.discover(query, tracker.certificate))
        second = sim.run_process(cluster.discover(query, tracker.certificate))
        assert first is not None and second is first
        assert self._counter(cluster, "tdn.query.cache.hit") == 1
        assert self._counter(cluster, "tdn.query.cache.miss") == 1

    def test_cache_hit_skips_cert_verify_charges(self, setup):
        sim, ca, cluster, entity, tracker = setup
        create_topic(sim, cluster, entity)
        query = DiscoveryQuery.for_entity("svc-1")
        sim.run_process(cluster.discover(query, tracker.certificate))
        verifies = self._counter(cluster, "crypto.ops.cert_verify")
        sim.run_process(cluster.discover(query, tracker.certificate))
        assert self._counter(cluster, "crypto.ops.cert_verify") == verifies

    def test_new_advertisement_invalidates(self, setup):
        sim, ca, cluster, entity, tracker = setup
        create_topic(sim, cluster, entity)
        query = DiscoveryQuery.for_entity("svc-1")
        sim.run_process(cluster.discover(query, tracker.certificate))
        create_topic(sim, cluster, entity)  # store version bumps
        sim.run_process(cluster.discover(query, tracker.certificate))
        assert self._counter(cluster, "tdn.query.cache.hit") == 0
        assert self._counter(cluster, "tdn.query.cache.miss") == 2

    def test_expired_topic_not_served_from_cache(self, setup):
        sim, ca, cluster, entity, tracker = setup
        create_topic(sim, cluster, entity, lifetime=50.0)
        query = DiscoveryQuery.for_entity("svc-1")
        found = sim.run_process(cluster.discover(query, tracker.certificate))
        assert found is not None
        sim.run(until=200.0)
        stale = sim.run_process(cluster.discover(query, tracker.certificate))
        assert stale is None

    def test_negative_answers_never_cached(self, setup):
        sim, ca, cluster, entity, tracker = setup
        query = DiscoveryQuery.for_entity("ghost")
        sim.run_process(cluster.discover(query, tracker.certificate))
        sim.run_process(cluster.discover(query, tracker.certificate))
        assert self._counter(cluster, "tdn.query.cache.hit") == 0

    def test_recover_restarts_cold(self, setup):
        sim, ca, cluster, entity, tracker = setup
        create_topic(sim, cluster, entity)
        query = DiscoveryQuery.for_entity("svc-1")
        node = cluster.nodes[0]
        sim.run_process(cluster.discover(query, tracker.certificate))
        assert len(node.query_cache) == 1
        node.fail()
        node.recover()
        assert len(node.query_cache) == 0

    def test_disabled_cache_preserves_legacy_path(self, rng):
        sim = Simulator()
        ca = CertificateAuthority("ca", rng)
        machines = [Machine(sim, "m0", CryptoCostModel.free(), rng)]
        cluster = TDNCluster(sim, ca, machines, uuid_seed=7, query_cache=False)
        entity = EntityCredentials.issue("svc-1", ca, rng)
        tracker = EntityCredentials.issue("tracker-1", ca, rng)
        create_topic(sim, cluster, entity)
        query = DiscoveryQuery.for_entity("svc-1")
        for _ in range(2):
            assert sim.run_process(
                cluster.discover(query, tracker.certificate)
            ) is not None
        metrics = cluster.monitor.metrics
        assert metrics.counter("tdn.query.cache.hit").value == 0
        assert metrics.counter("tdn.query.cache.miss").value == 0

    def test_discover_all_uses_cache(self, setup):
        sim, ca, cluster, entity, tracker = setup
        create_topic(sim, cluster, entity)
        query = DiscoveryQuery.for_entity("svc-1")
        first = sim.run_process(cluster.discover_all(query, tracker.certificate))
        second = sim.run_process(cluster.discover_all(query, tracker.certificate))
        assert [ad.trace_topic for ad in first] == [ad.trace_topic for ad in second]
        assert second is not first  # hits hand out a fresh list, not the cached one
        assert self._counter(cluster, "tdn.query.cache.hit") == 1
