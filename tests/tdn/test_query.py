"""Tests for discovery queries and restrictions."""

import pytest

from repro.crypto.keys import KeyPair
from repro.errors import DiscoveryError
from repro.tdn.query import DiscoveryQuery, DiscoveryRestrictions, trace_descriptor
from repro.util.identifiers import EntityId


class TestDescriptor:
    def test_format(self):
        assert trace_descriptor("svc-1") == "Availability/Traces/svc-1"
        assert trace_descriptor(EntityId("svc-1")) == "Availability/Traces/svc-1"


class TestDiscoveryQuery:
    def test_liveness_form(self):
        query = DiscoveryQuery.parse("/Liveness/svc-1")
        assert query.descriptor == "Availability/Traces/svc-1"
        assert query.entity_id == "svc-1"

    def test_descriptor_form(self):
        query = DiscoveryQuery.parse("Availability/Traces/svc-1")
        assert query.descriptor == "Availability/Traces/svc-1"

    def test_for_entity(self):
        assert DiscoveryQuery.for_entity("x").descriptor == trace_descriptor("x")

    @pytest.mark.parametrize(
        "bad", ["", "/Liveness", "/Liveness/", "/Other/svc", "Availability/Traces/"]
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(DiscoveryError):
            DiscoveryQuery.parse(bad)


class TestRestrictions:
    def test_open_to_authenticated(self, ca, rng):
        keys = KeyPair.generate(rng)
        cert = ca.issue("anyone", keys.public)
        restrictions = DiscoveryRestrictions.open_to_authenticated()
        assert restrictions.permits(cert, ca, now_ms=0.0)

    def test_no_credentials_denied(self, ca):
        restrictions = DiscoveryRestrictions.open_to_authenticated()
        assert not restrictions.permits(None, ca, now_ms=0.0)

    def test_allow_only(self, ca, rng):
        keys = KeyPair.generate(rng)
        alice = ca.issue("alice", keys.public)
        bob = ca.issue("bob", keys.public)
        restrictions = DiscoveryRestrictions.allow_only("alice")
        assert restrictions.permits(alice, ca, 0.0)
        assert not restrictions.permits(bob, ca, 0.0)

    def test_deny_wins(self, ca, rng):
        keys = KeyPair.generate(rng)
        alice = ca.issue("alice", keys.public)
        restrictions = DiscoveryRestrictions(
            allowed_subjects=frozenset({"alice"}),
            denied_subjects=frozenset({"alice"}),
        )
        assert not restrictions.permits(alice, ca, 0.0)

    def test_untrusted_ca_denied_silently(self, ca, rng):
        from repro.crypto.certificates import CertificateAuthority

        rogue = CertificateAuthority("rogue", rng)
        keys = KeyPair.generate(rng)
        cert = rogue.issue("alice", keys.public)
        restrictions = DiscoveryRestrictions.open_to_authenticated()
        assert not restrictions.permits(cert, ca, 0.0)  # no exception

    def test_expired_credentials_denied(self, ca, rng):
        keys = KeyPair.generate(rng)
        cert = ca.issue("alice", keys.public, not_after_ms=100.0)
        restrictions = DiscoveryRestrictions.open_to_authenticated()
        assert restrictions.permits(cert, ca, 50.0)
        assert not restrictions.permits(cert, ca, 200.0)

    def test_dict_roundtrip(self):
        for restrictions in (
            DiscoveryRestrictions.open_to_authenticated(),
            DiscoveryRestrictions.allow_only("a", "b"),
            DiscoveryRestrictions(
                allowed_subjects=frozenset({"a"}), denied_subjects=frozenset({"z"})
            ),
        ):
            assert DiscoveryRestrictions.from_dict(restrictions.to_dict()) == restrictions
