"""Wildcard topic discovery and bulk tracking."""

import pytest

from repro import build_deployment
from repro.tdn.query import DiscoveryQuery, DiscoveryRestrictions
from repro.tracing.traces import TraceType


@pytest.fixture
def dep():
    return build_deployment(broker_ids=["b1", "b2"], seed=1100)


def start_fleet(dep, names, **kwargs):
    entities = []
    for name in names:
        entity = dep.add_traced_entity(name, **kwargs)
        entity.start("b1")
        entities.append(entity)
    dep.sim.run(until=5_000)
    return entities


class TestQueryPatterns:
    def test_pattern_detection(self):
        assert DiscoveryQuery.for_pattern("compute-*").is_pattern
        assert not DiscoveryQuery.for_entity("compute-1").is_pattern

    def test_pattern_matching(self):
        query = DiscoveryQuery.for_pattern("compute-*")
        assert query.matches("Availability/Traces/compute-1")
        assert not query.matches("Availability/Traces/storage-1")

    def test_pattern_rejects_slash(self):
        from repro.errors import DiscoveryError

        with pytest.raises(DiscoveryError):
            DiscoveryQuery.for_pattern("a/b")

    def test_liveness_spelling_supports_wildcards(self):
        query = DiscoveryQuery.parse("/Liveness/compute-?")
        assert query.is_pattern
        assert query.matches("Availability/Traces/compute-7")


class TestWildcardDiscovery:
    def test_discover_all_returns_matching(self, dep):
        start_fleet(dep, ["compute-1", "compute-2", "storage-1"])
        tracker = dep.add_tracker("w")
        tracker.connect("b2")
        advertisements = dep.sim.run_process(
            dep.tdn.discover_all(
                DiscoveryQuery.for_pattern("compute-*"),
                tracker.credentials.certificate,
            )
        )
        names = sorted(str(ad.entity_id) for ad in advertisements)
        assert names == ["compute-1", "compute-2"]

    def test_restrictions_filter_silently(self, dep):
        dep.add_traced_entity("compute-open").start("b1")
        restricted = dep.add_traced_entity(
            "compute-private",
            restrictions=DiscoveryRestrictions.allow_only("somebody-else"),
        )
        restricted.start("b1")
        dep.sim.run(until=5_000)
        tracker = dep.add_tracker("w")
        tracker.connect("b2")
        advertisements = dep.sim.run_process(
            dep.tdn.discover_all(
                DiscoveryQuery.for_pattern("compute-*"),
                tracker.credentials.certificate,
            )
        )
        assert [str(ad.entity_id) for ad in advertisements] == ["compute-open"]

    def test_no_match_returns_empty(self, dep):
        start_fleet(dep, ["compute-1"])
        tracker = dep.add_tracker("w")
        tracker.connect("b2")
        advertisements = dep.sim.run_process(
            dep.tdn.discover_all(
                DiscoveryQuery.for_pattern("gpu-*"),
                tracker.credentials.certificate,
            )
        )
        assert advertisements == []


class TestBulkTracking:
    def test_track_matching_tracks_whole_fleet(self, dep):
        start_fleet(dep, ["compute-1", "compute-2", "compute-3", "db-1"])
        tracker = dep.add_tracker("w")
        tracker.connect("b2")
        proc = tracker.track_matching("compute-*")
        dep.sim.run(until=40_000)
        tracked = proc.value
        assert len(tracked) == 3
        seen = {t.entity_id for t in tracker.traces_of_type(TraceType.ALLS_WELL)}
        assert seen == {"compute-1", "compute-2", "compute-3"}

    def test_track_matching_skips_already_tracked(self, dep):
        start_fleet(dep, ["compute-1", "compute-2"])
        tracker = dep.add_tracker("w")
        tracker.connect("b2")
        tracker.track("compute-1")
        dep.sim.run(until=8_000)
        proc = tracker.track_matching("compute-*")
        dep.sim.run(until=15_000)
        assert [str(ad.entity_id) for ad in proc.value] == ["compute-2"]
