"""Confidentiality end to end: trace keys, key distribution, decryption."""

import pytest

from repro import build_deployment
from repro.tracing.traces import TraceType


@pytest.fixture
def dep():
    return build_deployment(broker_ids=["b1", "b2"], seed=300)


def bootstrap_secured(dep, tracker_count=1):
    entity = dep.add_traced_entity("svc", secured=True)
    trackers = []
    for i in range(tracker_count):
        tracker = dep.add_tracker(f"watcher-{i}")
        tracker.connect("b2")
        trackers.append(tracker)
    entity.start("b1")
    dep.sim.run(until=3_000)
    for tracker in trackers:
        tracker.track("svc")
    dep.sim.run(until=30_000)
    return entity, trackers


class TestKeyDistribution:
    def test_authorized_tracker_receives_key(self, dep):
        entity, (tracker,) = bootstrap_secured(dep)
        key = tracker.trace_key_for("svc")
        assert key is not None
        assert key == entity.trace_key

    def test_key_distributed_once_per_tracker(self, dep):
        _, trackers = bootstrap_secured(dep, tracker_count=3)
        dep.sim.run(until=60_000)
        assert dep.monitor.count("trace.keys_distributed") == 3

    def test_key_receipt_time_recorded(self, dep):
        _, (tracker,) = bootstrap_secured(dep)
        assert tracker.key_received_ms_for("svc") is not None


class TestEncryptedTraces:
    def test_traces_decrypt_at_keyed_tracker(self, dep):
        _, (tracker,) = bootstrap_secured(dep)
        heartbeats = tracker.traces_of_type(TraceType.ALLS_WELL)
        assert heartbeats
        assert all("rtt_ms" in t.payload for t in heartbeats)

    def test_wire_bodies_are_ciphertext(self, dep):
        """On the wire the trace payload is unreadable."""
        captured = []
        entity = dep.add_traced_entity("svc", secured=True)
        tracker = dep.add_tracker("watcher")
        tracker.connect("b2")
        entity.start("b1")
        dep.sim.run(until=3_000)
        tracker.track("svc")
        dep.sim.run(until=5_000)

        # tap the raw messages arriving at b2 for the heartbeat topic
        topics = dep.manager_of("b1").session_of("svc").topics
        dep.network.broker("b2").subscribe_local(
            topics.all_updates.canonical, captured.append
        )
        dep.sim.run(until=20_000)
        assert captured
        for message in captured:
            assert message.encrypted
            assert message.body.get("secured") is True
            assert "payload" not in message.body

    def test_latencies_higher_than_auth_only(self):
        """auth+security costs more than auth alone (Table 3 gap)."""

        def mean_latency(secured):
            dep = build_deployment(broker_ids=["b1", "b2"], seed=301)
            entity = dep.add_traced_entity(
                "svc", secured=secured, machine_name="host"
            )
            tracker = dep.add_tracker("w", machine_name="host")
            tracker.connect("b2")
            entity.start("b1")
            dep.sim.run(until=3_000)
            tracker.track("svc")
            dep.sim.run(until=60_000)
            latencies = tracker.latencies(TraceType.ALLS_WELL)
            return sum(latencies) / len(latencies)

        assert mean_latency(True) > mean_latency(False) + 5.0


class TestUnauthorizedAccess:
    def test_tracker_without_key_cannot_read(self, dep):
        """A tracker subscribed but never keyed drops secured traces."""
        entity = dep.add_traced_entity("svc", secured=True)
        snoop = dep.add_tracker("snoop", proactive_interest=False)
        snoop.connect("b2")
        keyed = dep.add_tracker("legit")
        keyed.connect("b2")
        entity.start("b1")
        dep.sim.run(until=3_000)
        keyed.track("svc")
        snoop.track("svc")  # subscribes but never answers gauge requests
        dep.sim.run(until=30_000)

        assert keyed.traces_of_type(TraceType.ALLS_WELL)
        assert not snoop.traces_of_type(TraceType.ALLS_WELL)
        assert snoop.monitor.count("tracker.traces_no_key_yet") > 0 or \
            dep.monitor.count("tracker.traces_no_key_yet") > 0
