"""Denial-of-service defenses end to end (section 5.2)."""

import pytest

from repro import build_deployment
from repro.security.dos import SpuriousTracePublisher, attack_surface
from repro.tracing.traces import TraceType


@pytest.fixture
def dep():
    return build_deployment(broker_ids=["b1", "b2"], seed=500)


def bootstrap(dep):
    entity = dep.add_traced_entity("victim")
    tracker = dep.add_tracker("watcher")
    tracker.connect("b2")
    entity.start("b1")
    dep.sim.run(until=3_000)
    tracker.track("victim")
    dep.sim.run(until=6_000)
    return entity, tracker


class TestSpuriousTraces:
    def test_tokenless_trace_discarded(self, dep):
        entity, tracker = bootstrap(dep)
        attacker = SpuriousTracePublisher(
            dep.sim, "mallory", dep.network, dep.network.machine("mallory-host")
        )
        attacker.connect("b2")
        before = len(tracker.traces_of_type(TraceType.FAILED))
        dep.sim.process(
            attacker.inject_without_token(entity.advertisement.trace_topic, "victim")
        )
        dep.sim.run(until=10_000)
        assert len(tracker.traces_of_type(TraceType.FAILED)) == before
        # rejected at the first line of defense: the constrained-topic rule
        # (entities may not publish on Broker/Publish-Only topics); the token
        # guard would catch it too if the constraint were ever bypassed
        assert dep.monitor.count("messages.rejected_constrained") >= 1

    def test_forged_token_trace_discarded(self, dep):
        entity, tracker = bootstrap(dep)
        attacker = SpuriousTracePublisher(
            dep.sim, "mallory", dep.network, dep.network.machine("mallory-host")
        )
        attacker.connect("b2")
        dep.sim.process(
            attacker.inject_with_forged_token(
                entity.advertisement.trace_topic, "victim", entity.advertisement
            )
        )
        dep.sim.run(until=10_000)
        assert not tracker.traces_of_type(TraceType.FAILED)
        assert dep.monitor.count("messages.rejected_constrained") >= 1

    def test_flood_triggers_termination(self, dep):
        entity, tracker = bootstrap(dep)
        attacker = SpuriousTracePublisher(
            dep.sim, "mallory", dep.network, dep.network.machine("mallory-host")
        )
        attacker.connect("b2")
        dep.sim.process(
            attacker.flood(entity.advertisement.trace_topic, "victim", count=10)
        )
        dep.sim.run(until=20_000)
        broker = dep.network.broker("b2")
        assert broker.is_blacklisted("mallory")
        assert dep.monitor.count("dos.terminated") >= 1
        # the victim's trace stream is unaffected throughout
        assert tracker.traces_of_type(TraceType.ALLS_WELL)
        assert not tracker.traces_of_type(TraceType.FAILED)

    def test_victim_not_declared_failed_during_attack(self, dep):
        entity, tracker = bootstrap(dep)
        attacker = SpuriousTracePublisher(
            dep.sim, "mallory", dep.network, dep.network.machine("mallory-host")
        )
        attacker.connect("b1")  # even from the victim's own broker
        dep.sim.process(
            attacker.flood(entity.advertisement.trace_topic, "victim", count=20)
        )
        dep.sim.run(until=30_000)
        session = dep.manager_of("b1").session_of("victim")
        assert not session.declared_failed


class TestCompromisedBroker:
    """Second line of defense: even a broker cannot publish traces without
    a token the topic owner signed (section 4.3)."""

    def test_tokenless_broker_publication_not_routed(self, dep):
        entity, tracker = bootstrap(dep)
        from repro.messaging.message import Message
        from repro.messaging.topics import Topic

        session = dep.manager_of("b1").session_of("victim")
        rogue_broker = dep.network.broker("b1")
        before = len(tracker.traces_of_type(TraceType.FAILED))
        rogue_broker.publish_from_broker(
            Message(
                topic=Topic.parse(session.topics.change_notifications.canonical),
                body={"trace_type": "FAILED", "entity_id": "victim",
                      "payload": {}, "origin_stamp_ms": None},
                source="b1",
            )
        )
        dep.sim.run(until=10_000)
        assert len(tracker.traces_of_type(TraceType.FAILED)) == before
        assert dep.monitor.count("auth.missing_token") >= 1

    def test_forged_token_broker_publication_not_routed(self, dep):
        entity, tracker = bootstrap(dep)
        from repro.auth.tokens import AuthorizationToken, TokenRights
        from repro.crypto.keys import KeyPair
        from repro.crypto.signing import sign_payload
        from repro.messaging.message import Message
        from repro.messaging.topics import Topic

        session = dep.manager_of("b1").session_of("victim")
        rogue_keys = KeyPair.generate(dep.network.machine("rogue").rng)
        token, token_private = AuthorizationToken.create(
            advertisement=entity.advertisement,
            owner_private_key=rogue_keys.private,  # not the topic owner
            rights=TokenRights.PUBLISH,
            now_ms=dep.sim.now,
            duration_ms=600_000.0,
            rng=dep.network.machine("rogue").rng,
        )
        body = {"trace_type": "FAILED", "entity_id": "victim",
                "payload": {}, "origin_stamp_ms": None}
        envelope = sign_payload(body, token_private)
        dep.network.broker("b1").publish_from_broker(
            Message(
                topic=Topic.parse(session.topics.change_notifications.canonical),
                body=body,
                source="b1",
                signature=envelope.to_dict(),
                auth_token=token.to_dict(),
            )
        )
        dep.sim.run(until=10_000)
        assert not tracker.traces_of_type(TraceType.FAILED)
        assert dep.monitor.count("auth.invalid_token") >= 1


class TestLocationHiding:
    def test_only_hosting_broker_knows_location(self, dep):
        bootstrap(dep)
        surface = attack_surface(dep.network, "b1", "victim")
        assert surface["location_confined_to_hosting_broker"]
        assert surface["brokers_knowing_location"] == ["b1"]

    def test_topic_reregistration_after_compromise(self, dep):
        """Section 5.2: if the trace topic leaks, register a fresh one."""
        entity, tracker = bootstrap(dep)
        old_topic = entity.advertisement.trace_topic
        dep.sim.run_process(entity.create_trace_topic())
        assert entity.advertisement.trace_topic != old_topic
