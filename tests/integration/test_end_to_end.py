"""End-to-end protocol tests over a full deployment."""

import pytest

from repro import build_deployment
from repro.tracing.interest import InterestCategory
from repro.tracing.traces import EntityState, LoadInformation, TraceType


@pytest.fixture
def dep():
    return build_deployment(broker_ids=["b1", "b2", "b3"], seed=100)


def bootstrap(dep, entity_kwargs=None, tracker_kwargs=None,
              entity_broker="b1", tracker_broker="b3"):
    entity = dep.add_traced_entity("svc", **(entity_kwargs or {}))
    tracker = dep.add_tracker("watcher", **(tracker_kwargs or {}))
    tracker.connect(tracker_broker)
    entity.start(entity_broker)
    dep.sim.run(until=3_000)
    tracker.track("svc")
    return entity, tracker


class TestRegistration:
    def test_entity_registers_and_becomes_ready(self, dep):
        entity, _ = bootstrap(dep)
        assert entity.session_id is not None
        assert entity.state is EntityState.READY
        session = dep.manager_of("b1").session_of("svc")
        assert session is not None
        assert session.token is not None
        assert session.entity_state is EntityState.READY

    def test_only_hosting_broker_has_session(self, dep):
        bootstrap(dep)
        assert dep.manager_of("b1").session_of("svc") is not None
        assert dep.manager_of("b2").session_of("svc") is None
        assert dep.manager_of("b3").session_of("svc") is None

    def test_join_trace_published(self, dep):
        _, tracker = bootstrap(dep)
        dep.sim.run(until=10_000)
        assert dep.monitor.count("trace.published.JOIN") == 1


class TestTraceFlow:
    def test_alls_well_heartbeats_flow(self, dep):
        _, tracker = bootstrap(dep)
        dep.sim.run(until=30_000)
        heartbeats = tracker.traces_of_type(TraceType.ALLS_WELL)
        assert len(heartbeats) >= 10
        for trace in heartbeats:
            assert trace.entity_id == "svc"
            assert trace.latency_ms is not None and trace.latency_ms > 0

    def test_network_metrics_derived(self, dep):
        _, tracker = bootstrap(dep)
        dep.sim.run(until=30_000)
        metrics = tracker.traces_of_type(TraceType.NETWORK_METRICS)
        assert metrics
        payload = metrics[-1].payload
        assert payload["loss_rate"] == 0.0
        assert payload["mean_rtt_ms"] > 0

    def test_state_transitions_reported(self, dep):
        entity, tracker = bootstrap(dep)
        dep.sim.run(until=10_000)
        dep.sim.process(entity.report_state(EntityState.RECOVERING))
        dep.sim.run(until=12_000)
        dep.sim.process(entity.report_state(EntityState.READY))
        dep.sim.run(until=14_000)
        seen = [t.trace_type for t in tracker.received
                if t.trace_type in (TraceType.RECOVERING, TraceType.READY)]
        assert TraceType.RECOVERING in seen
        assert seen.count(TraceType.READY) >= 1

    def test_load_reports_flow(self, dep):
        entity, tracker = bootstrap(dep)
        dep.sim.run(until=10_000)
        load = LoadInformation(0.75, 1024.0, 4096.0, workload=12)
        dep.sim.process(entity.report_load(load))
        dep.sim.run(until=12_000)
        received = tracker.traces_of_type(TraceType.LOAD_INFORMATION)
        assert received
        assert received[-1].payload["cpu_utilization"] == 0.75

    def test_illegal_state_transition_rejected_locally(self, dep):
        entity, _ = bootstrap(dep)
        with pytest.raises(ValueError):
            dep.sim.run_process(entity.report_state(EntityState.INITIALIZING))


class TestInterestGating:
    def test_no_interest_no_traces(self, dep):
        """Without any tracker, pings continue but no traces are published."""
        entity = dep.add_traced_entity("svc")
        entity.start("b1")
        dep.sim.run(until=20_000)
        assert dep.monitor.count("trace.pings_sent") > 5
        assert dep.monitor.count("trace.published.ALLS_WELL") == 0
        assert dep.monitor.count("trace.suppressed_no_interest") > 5

    def test_selective_interest(self, dep):
        entity, tracker = bootstrap(
            dep,
            tracker_kwargs=dict(
                interests=frozenset({InterestCategory.CHANGE_NOTIFICATIONS})
            ),
        )
        dep.sim.run(until=20_000)
        assert not tracker.traces_of_type(TraceType.ALLS_WELL)
        # heartbeats were suppressed at the source, not filtered at delivery
        assert dep.monitor.count("trace.published.ALLS_WELL") == 0

    def test_interest_expiry_stops_publication(self):
        dep = build_deployment(
            broker_ids=["b1"], seed=5, gauge_interval_ms=1_000_000.0
        )
        dep.managers["b1"].interest_ttl_ms = 5_000.0
        entity = dep.add_traced_entity("svc")
        tracker = dep.add_tracker("watcher", proactive_interest=True)
        tracker.connect("b1")
        entity.start("b1")
        dep.sim.run(until=2_000)
        tracker.track("svc")
        # tracker responds once; with no re-gauging its interest expires
        session_ttl = dep.manager_of("b1").session_of("svc")
        session_ttl.interest.ttl_ms = 5_000.0
        dep.sim.run(until=30_000)
        published = dep.monitor.count("trace.published.ALLS_WELL")
        assert published > 0
        suppressed = dep.monitor.count("trace.suppressed_no_interest")
        assert suppressed > 0  # publications stopped after expiry


class TestLifecycle:
    def test_graceful_shutdown(self, dep):
        entity, tracker = bootstrap(dep)
        dep.sim.run(until=10_000)
        dep.sim.process(entity.shutdown())
        dep.sim.run(until=15_000)
        shutdown_traces = tracker.traces_of_type(TraceType.SHUTDOWN)
        assert shutdown_traces
        session = dep.manager_of("b1").session_of("svc")
        assert not session.active
        pings_at_shutdown = dep.monitor.count("trace.pings_sent")
        dep.sim.run(until=25_000)
        assert dep.monitor.count("trace.pings_sent") <= pings_at_shutdown + 1

    def test_silent_mode(self, dep):
        entity, tracker = bootstrap(dep)
        dep.sim.run(until=10_000)
        dep.sim.process(entity.disable_tracing())
        dep.sim.run(until=15_000)
        assert tracker.traces_of_type(TraceType.REVERTING_TO_SILENT_MODE)
        assert not dep.manager_of("b1").session_of("svc").active

    def test_disconnect_trace(self, dep):
        entity, tracker = bootstrap(dep)
        dep.sim.run(until=10_000)
        dep.manager_of("b1").handle_client_disconnect("svc")
        dep.sim.run(until=15_000)
        assert tracker.traces_of_type(TraceType.DISCONNECT)


class TestObservability:
    """The repro.obs registry must agree with what the protocol did."""

    def test_broker_ingress_matches_legacy_counter(self, dep):
        bootstrap(dep)
        dep.sim.run(until=30_000)
        assert dep.metrics.counter_value("broker.msgs.ingress") == \
            dep.monitor.count("messages.received")
        assert dep.metrics.counter_value("broker.msgs.ingress") > 0

    def test_delivery_counters_match_message_counts(self, dep):
        bootstrap(dep)
        dep.sim.run(until=30_000)
        delivered = dep.metrics.counter_value("broker.msgs.delivered")
        assert delivered == (
            dep.monitor.count("messages.delivered_client")
            + dep.monitor.count("messages.delivered_broker_local")
        )
        # every trace the tracker verified was first delivered by a broker
        assert delivered >= dep.metrics.counter_value("tracker.traces.received")
        assert dep.metrics.counter_value("tracker.traces.received") >= 10

    def test_trace_latency_histogram_matches_tracker_samples(self, dep):
        _, tracker = bootstrap(dep)
        dep.sim.run(until=30_000)
        hist = dep.metrics.histogram("tracker.trace.latency_ms.alls_well")
        latencies = tracker.latencies(TraceType.ALLS_WELL)
        assert hist.count == len(latencies)
        assert hist.mean == pytest.approx(sum(latencies) / len(latencies))

    def test_snapshot_covers_instrumented_families(self, dep):
        bootstrap(dep)
        dep.sim.run(until=30_000)
        families = set(dep.metrics.families())
        assert {"broker", "tracker", "transport", "tdn", "crypto"} <= families
        snapshot = dep.snapshot()
        assert snapshot == dep.monitor.metrics.snapshot()
        assert snapshot["counters"]["transport.msgs.sent"] > 0

    def test_violation_events_land_in_journal(self, dep):
        bootstrap(dep)
        broker = dep.network.broker("b1")
        broker._record_violation("mallory", "publish on Constrained/x")
        assert dep.metrics.counter_value("broker.violations") == 1
        violations = dep.journal.records("violation")
        assert violations and violations[-1].principal == "mallory"


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        def run():
            dep = build_deployment(broker_ids=["b1", "b2"], seed=77)
            entity = dep.add_traced_entity("svc")
            tracker = dep.add_tracker("w")
            tracker.connect("b2")
            entity.start("b1")
            dep.sim.run(until=2_000)
            tracker.track("svc")
            dep.sim.run(until=20_000)
            return [
                (t.trace_type.value, round(t.received_ms, 9))
                for t in tracker.received
            ]

        assert run() == run()
