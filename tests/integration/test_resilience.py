"""Recovery and resilience: re-registration, broker failure, migration."""

import pytest

from repro import build_deployment
from repro.tracing.failure import AdaptivePingPolicy
from repro.tracing.traces import TraceType

FAST_POLICY = AdaptivePingPolicy(
    base_interval_ms=500.0, min_interval_ms=100.0,
    max_interval_ms=1_000.0, response_deadline_ms=200.0,
)


@pytest.fixture
def dep():
    return build_deployment(
        broker_ids=["b1", "b2", "b3"], seed=700, ping_policy=FAST_POLICY
    )


def bootstrap(dep, tracker_broker="b3"):
    entity = dep.add_traced_entity("svc")
    tracker = dep.add_tracker("w")
    tracker.interest_refresh_ms = 0.0  # always answer gauges promptly
    tracker.connect(tracker_broker)
    entity.start("b1")
    dep.sim.run(until=3_000)
    tracker.track("svc")
    dep.sim.run(until=6_000)
    return entity, tracker


class TestReregistration:
    def test_failed_entity_resumes_after_reregistration(self, dep):
        entity, tracker = bootstrap(dep)
        entity.crash()
        dep.sim.run(until=60_000)
        assert tracker.traces_of_type(TraceType.FAILED)
        old_session = entity.session_id

        dep.sim.process(entity.reregister())
        dep.sim.run(until=90_000)
        assert entity.session_id != old_session
        # the tracker sees fresh heartbeats without resubscribing
        late = [t for t in tracker.traces_of_type(TraceType.ALLS_WELL)
                if t.received_ms > 62_000]
        assert late

    def test_reregistration_supersedes_old_session(self, dep):
        entity, _ = bootstrap(dep)
        dep.sim.process(entity.reregister())
        dep.sim.run(until=20_000)
        manager = dep.manager_of("b1")
        assert dep.monitor.count("trace.sessions_superseded") == 1
        active = [s for s in manager.sessions.values() if s.active]
        assert len(active) == 1

    def test_recovery_announces_state_transitions(self, dep):
        entity, tracker = bootstrap(dep)
        entity.crash()
        dep.sim.run(until=60_000)
        dep.sim.process(entity.reregister())
        dep.sim.run(until=90_000)
        kinds = [t.trace_type for t in tracker.received]
        assert TraceType.RECOVERING in kinds
        assert TraceType.JOIN in kinds  # re-registration re-announces JOIN


class TestBrokerFailure:
    def test_failed_broker_stops_traffic(self, dep):
        entity, tracker = bootstrap(dep)
        dep.network.fail_broker("b1")
        marker = dep.sim.now
        dep.sim.run(until=marker + 20_000)
        late = [t for t in tracker.traces_of_type(TraceType.ALLS_WELL)
                if t.received_ms > marker + 1_000]
        assert not late
        assert dep.monitor.count("messages.dropped_broker_failed") > 0

    def test_routing_steers_around_failed_broker(self, dep):
        # ring topology so b2's failure leaves a path b1-b3
        dep.network.connect_brokers("b1", "b3")
        entity, tracker = bootstrap(dep)
        count_before = len(tracker.traces_of_type(TraceType.ALLS_WELL))
        dep.network.fail_broker("b2")
        dep.sim.run(until=30_000)
        count_after = len(tracker.traces_of_type(TraceType.ALLS_WELL))
        assert count_after > count_before  # traces now flow b1 -> b3

    def test_entity_migrates_to_live_broker(self, dep):
        entity, tracker = bootstrap(dep)
        dep.network.fail_broker("b1")
        dep.sim.run(until=12_000)

        dep.sim.process(entity.migrate("b2"))
        dep.sim.run(until=40_000)
        assert entity.client.broker.broker_id == "b2"
        assert dep.manager_of("b2").session_of("svc") is not None
        late = [t for t in tracker.traces_of_type(TraceType.ALLS_WELL)
                if t.received_ms > 20_000]
        assert late, "tracker should keep receiving after migration"

    def test_recovered_broker_rejoins(self, dep):
        entity, tracker = bootstrap(dep)
        dep.network.fail_broker("b2")
        dep.sim.run(until=12_000)
        dep.network.recover_broker("b2", neighbors=["b1", "b3"])
        dep.sim.run(until=40_000)
        late = [t for t in tracker.traces_of_type(TraceType.ALLS_WELL)
                if t.received_ms > 13_000]
        assert late
