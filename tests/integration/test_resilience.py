"""Recovery and resilience: re-registration, broker failure, migration."""

import pytest

from repro import build_deployment
from repro.tracing.failure import AdaptivePingPolicy
from repro.tracing.traces import TraceType

FAST_POLICY = AdaptivePingPolicy(
    base_interval_ms=500.0, min_interval_ms=100.0,
    max_interval_ms=1_000.0, response_deadline_ms=200.0,
)


@pytest.fixture
def dep():
    return build_deployment(
        broker_ids=["b1", "b2", "b3"], seed=700, ping_policy=FAST_POLICY
    )


def bootstrap(dep, tracker_broker="b3"):
    entity = dep.add_traced_entity("svc")
    tracker = dep.add_tracker("w")
    tracker.interest_refresh_ms = 0.0  # always answer gauges promptly
    tracker.connect(tracker_broker)
    entity.start("b1")
    dep.sim.run(until=3_000)
    tracker.track("svc")
    dep.sim.run(until=6_000)
    return entity, tracker


class TestReregistration:
    def test_failed_entity_resumes_after_reregistration(self, dep):
        entity, tracker = bootstrap(dep)
        entity.crash()
        dep.sim.run(until=60_000)
        assert tracker.traces_of_type(TraceType.FAILED)
        old_session = entity.session_id

        dep.sim.process(entity.reregister())
        dep.sim.run(until=90_000)
        assert entity.session_id != old_session
        # the tracker sees fresh heartbeats without resubscribing
        late = [t for t in tracker.traces_of_type(TraceType.ALLS_WELL)
                if t.received_ms > 62_000]
        assert late

    def test_reregistration_supersedes_old_session(self, dep):
        entity, _ = bootstrap(dep)
        dep.sim.process(entity.reregister())
        dep.sim.run(until=20_000)
        manager = dep.manager_of("b1")
        assert dep.monitor.count("trace.sessions_superseded") == 1
        active = [s for s in manager.sessions.values() if s.active]
        assert len(active) == 1

    def test_recovery_announces_state_transitions(self, dep):
        entity, tracker = bootstrap(dep)
        entity.crash()
        dep.sim.run(until=60_000)
        dep.sim.process(entity.reregister())
        dep.sim.run(until=90_000)
        kinds = [t.trace_type for t in tracker.received]
        assert TraceType.RECOVERING in kinds
        assert TraceType.JOIN in kinds  # re-registration re-announces JOIN


class TestBrokerFailure:
    def test_failed_broker_stops_traffic(self, dep):
        entity, tracker = bootstrap(dep)
        dep.network.fail_broker("b1")
        marker = dep.sim.now
        dep.sim.run(until=marker + 10_000)
        # the manager's ping loop freezes during the outage, so drive some
        # client traffic at the dead broker to show it gets dropped
        entity.client.publish("app.data", {"status": "still-alive"})
        dep.sim.run(until=marker + 20_000)
        late = [t for t in tracker.traces_of_type(TraceType.ALLS_WELL)
                if t.received_ms > marker + 1_000]
        assert not late
        assert dep.monitor.count("messages.dropped_broker_failed") > 0

    def test_routing_steers_around_failed_broker(self, dep):
        # ring topology so b2's failure leaves a path b1-b3
        dep.network.connect_brokers("b1", "b3")
        entity, tracker = bootstrap(dep)
        count_before = len(tracker.traces_of_type(TraceType.ALLS_WELL))
        dep.network.fail_broker("b2")
        dep.sim.run(until=30_000)
        count_after = len(tracker.traces_of_type(TraceType.ALLS_WELL))
        assert count_after > count_before  # traces now flow b1 -> b3

    def test_entity_migrates_to_live_broker(self, dep):
        entity, tracker = bootstrap(dep)
        dep.network.fail_broker("b1")
        dep.sim.run(until=12_000)

        dep.sim.process(entity.migrate("b2"))
        dep.sim.run(until=40_000)
        assert entity.client.broker.broker_id == "b2"
        assert dep.manager_of("b2").session_of("svc") is not None
        late = [t for t in tracker.traces_of_type(TraceType.ALLS_WELL)
                if t.received_ms > 20_000]
        assert late, "tracker should keep receiving after migration"

    def test_recovered_broker_rejoins(self, dep):
        entity, tracker = bootstrap(dep)
        dep.network.fail_broker("b2")
        dep.sim.run(until=12_000)
        dep.network.recover_broker("b2", neighbors=["b1", "b3"])
        dep.sim.run(until=40_000)
        late = [t for t in tracker.traces_of_type(TraceType.ALLS_WELL)
                if t.received_ms > 13_000]
        assert late


class TestBrokerRestart:
    """Regression: a restarted broker must not judge a live entity by the
    ping watermark of its pre-crash incarnation (see PingHistory
    ``reset_incarnation``)."""

    def test_entity_survives_broker_restart_without_false_failure(self, dep):
        entity, tracker = bootstrap(dep)
        neighbors = dep.network.neighbors_of("b1")
        dep.network.fail_broker("b1")
        restart_at = dep.sim.now + 8_000
        dep.sim.call_at(restart_at, lambda: dep.restart_broker("b1", neighbors))
        dep.sim.run(until=restart_at + 30_000)

        # the entity never crashed, so the restarted broker must not have
        # declared it FAILED off pre-crash ping state
        assert not tracker.traces_of_type(TraceType.FAILED)
        session = dep.manager_of("b1").session_of("svc")
        assert session is not None and session.active
        assert not session.declared_failed
        late = [t for t in tracker.traces_of_type(TraceType.ALLS_WELL)
                if t.received_ms > restart_at + 1_000]
        assert late, "heartbeats should resume after the restart"

    def test_restart_clears_stale_ping_watermark(self, dep):
        entity, _ = bootstrap(dep)
        session = dep.manager_of("b1").session_of("svc")
        assert session.history.last_ping_ms is not None
        dep.network.fail_broker("b1")
        dep.sim.run(until=dep.sim.now + 5_000)
        dep.restart_broker("b1", ["b2"])
        # fresh incarnation: window emptied, watermark cleared
        assert session.history.last_ping_ms is None
        assert len(session.history) == 0
        dep.sim.run(until=dep.sim.now + 10_000)
        # post-restart pings are being issued and answered again
        assert len(session.history) > 0
        assert session.history.rtts(), "fresh responses should be matched"
