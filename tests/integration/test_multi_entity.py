"""Multiple entities and trackers coexisting in one deployment."""

import pytest

from repro import build_deployment
from repro.tracing.interest import InterestCategory
from repro.tracing.traces import TraceType


@pytest.fixture
def dep():
    return build_deployment(broker_ids=["b1", "b2", "b3"], seed=600)


class TestMultipleEntities:
    def test_traces_isolated_per_entity(self, dep):
        entity_a = dep.add_traced_entity("svc-a")
        entity_b = dep.add_traced_entity("svc-b")
        tracker = dep.add_tracker("w")
        tracker.connect("b3")
        entity_a.start("b1")
        entity_b.start("b2")
        dep.sim.run(until=4_000)
        tracker.track("svc-a")  # only tracks A
        dep.sim.run(until=20_000)
        entities_seen = {t.entity_id for t in tracker.received}
        assert entities_seen == {"svc-a"}

    def test_distinct_trace_topics(self, dep):
        entity_a = dep.add_traced_entity("svc-a")
        entity_b = dep.add_traced_entity("svc-b")
        entity_a.start("b1")
        entity_b.start("b1")
        dep.sim.run(until=4_000)
        assert (
            entity_a.advertisement.trace_topic != entity_b.advertisement.trace_topic
        )

    def test_one_tracker_many_entities(self, dep):
        names = [f"svc-{i}" for i in range(4)]
        for name in names:
            dep.add_traced_entity(name).start("b1")
        tracker = dep.add_tracker("w")
        tracker.connect("b3")
        dep.sim.run(until=5_000)
        for name in names:
            tracker.track(name)
        dep.sim.run(until=30_000)
        seen = {t.entity_id for t in tracker.traces_of_type(TraceType.ALLS_WELL)}
        assert seen == set(names)

    def test_failure_of_one_does_not_affect_others(self, dep):
        entity_a = dep.add_traced_entity("svc-a")
        entity_b = dep.add_traced_entity("svc-b")
        tracker = dep.add_tracker("w")
        tracker.connect("b2")
        entity_a.start("b1")
        entity_b.start("b1")
        dep.sim.run(until=4_000)
        tracker.track("svc-a")
        tracker.track("svc-b")
        dep.sim.run(until=8_000)
        entity_a.crash()
        dep.sim.run(until=120_000)
        failed = {t.entity_id for t in tracker.traces_of_type(TraceType.FAILED)}
        assert failed == {"svc-a"}
        late_b = [
            t for t in tracker.traces_of_type(TraceType.ALLS_WELL)
            if t.entity_id == "svc-b" and t.received_ms > 60_000
        ]
        assert late_b


class TestMultipleTrackers:
    def test_fanout_to_all_interested(self, dep):
        entity = dep.add_traced_entity("svc")
        trackers = []
        for i, broker in enumerate(["b1", "b2", "b3"]):
            tracker = dep.add_tracker(f"w{i}")
            tracker.connect(broker)
            trackers.append(tracker)
        entity.start("b1")
        dep.sim.run(until=4_000)
        for tracker in trackers:
            tracker.track("svc")
        dep.sim.run(until=20_000)
        for tracker in trackers:
            assert tracker.traces_of_type(TraceType.ALLS_WELL)

    def test_mixed_interests(self, dep):
        entity = dep.add_traced_entity("svc")
        hb_tracker = dep.add_tracker(
            "hb", interests=frozenset({InterestCategory.ALL_UPDATES})
        )
        ch_tracker = dep.add_tracker(
            "ch", interests=frozenset({InterestCategory.CHANGE_NOTIFICATIONS})
        )
        hb_tracker.connect("b2")
        ch_tracker.connect("b3")
        entity.start("b1")
        dep.sim.run(until=4_000)
        hb_tracker.track("svc")
        ch_tracker.track("svc")
        dep.sim.run(until=15_000)
        entity.crash()
        dep.sim.run(until=120_000)

        assert hb_tracker.traces_of_type(TraceType.ALLS_WELL)
        assert not hb_tracker.traces_of_type(TraceType.FAILED)
        assert ch_tracker.traces_of_type(TraceType.FAILED)
        assert not ch_tracker.traces_of_type(TraceType.ALLS_WELL)

    def test_secured_keys_per_tracker(self, dep):
        entity = dep.add_traced_entity("svc", secured=True)
        tracker_a = dep.add_tracker("wa")
        tracker_b = dep.add_tracker("wb")
        tracker_a.connect("b2")
        tracker_b.connect("b3")
        entity.start("b1")
        dep.sim.run(until=4_000)
        tracker_a.track("svc")
        tracker_b.track("svc")
        dep.sim.run(until=30_000)
        assert tracker_a.trace_key_for("svc") == entity.trace_key
        assert tracker_b.trace_key_for("svc") == entity.trace_key
        assert tracker_a.traces_of_type(TraceType.ALLS_WELL)
        assert tracker_b.traces_of_type(TraceType.ALLS_WELL)
