"""Scale smoke tests: a larger deployment stays correct and deterministic."""

import pytest

from repro import build_deployment
from repro.tracing.failure import AdaptivePingPolicy
from repro.tracing.traces import TraceType

POLICY = AdaptivePingPolicy(
    base_interval_ms=2_000.0, min_interval_ms=500.0,
    max_interval_ms=4_000.0, response_deadline_ms=500.0,
)


def build_scenario(seed=1400):
    """5 brokers in a ring+chord, 12 entities, 18 trackers."""
    dep = build_deployment(
        broker_ids=[f"b{i}" for i in range(5)],
        topology="chain",
        seed=seed,
        ping_policy=POLICY,
        extra_links=[("b0", "b4"), ("b1", "b3")],
    )
    entities = []
    for i in range(12):
        entity = dep.add_traced_entity(f"svc-{i:02d}")
        dep.sim.call_later(
            137.0 * i, lambda e=entity, b=f"b{i % 5}": e.start(b)
        )
        entities.append(entity)
    dep.sim.run(until=8_000)
    trackers = []
    for i in range(18):
        tracker = dep.add_tracker(f"w-{i:02d}")
        tracker.connect(f"b{(i + 2) % 5}")
        for j in range(3):  # each tracker follows three entities
            tracker.track(f"svc-{(i + j) % 12:02d}")
        trackers.append(tracker)
    return dep, entities, trackers


class TestScale:
    def test_everyone_registered_and_traced(self):
        dep, entities, trackers = build_scenario()
        dep.sim.run(until=60_000)
        assert all(e.session_id is not None for e in entities)
        for tracker in trackers:
            seen = {t.entity_id for t in tracker.traces_of_type(TraceType.ALLS_WELL)}
            assert len(seen) == 3, f"{tracker.tracker_id} saw {seen}"
        # zero security violations in a healthy system
        assert dep.monitor.count("auth.invalid_token") == 0
        assert dep.monitor.count("tracker.traces_bad_signature") == 0
        assert dep.monitor.count("dos.violations") == 0

    def test_mixed_failures_isolated(self):
        dep, entities, trackers = build_scenario(seed=1401)
        dep.sim.run(until=30_000)
        entities[3].crash()
        dep.sim.process(entities[7].shutdown())
        dep.sim.run(until=180_000)

        failed_seen = set()
        shutdown_seen = set()
        for tracker in trackers:
            failed_seen |= {
                t.entity_id for t in tracker.traces_of_type(TraceType.FAILED)
            }
            shutdown_seen |= {
                t.entity_id for t in tracker.traces_of_type(TraceType.SHUTDOWN)
            }
        assert failed_seen == {"svc-03"}
        assert shutdown_seen == {"svc-07"}

    def test_deterministic_at_scale(self):
        def fingerprint(seed):
            dep, entities, trackers = build_scenario(seed=seed)
            dep.sim.run(until=45_000)
            return tuple(
                (w.tracker_id, len(w.received),
                 round(sum(w.latencies() or [0.0]), 6))
                for w in trackers
            )

        assert fingerprint(1402) == fingerprint(1402)
        assert fingerprint(1402) != fingerprint(1403)
