"""Failure detection: suspicion, failure, adaptive ping intervals."""

import pytest

from repro import build_deployment
from repro.tracing.failure import AdaptivePingPolicy, DetectorVerdict
from repro.tracing.traces import TraceType

FAST_POLICY = AdaptivePingPolicy(
    base_interval_ms=500.0,
    min_interval_ms=100.0,
    max_interval_ms=2_000.0,
    response_deadline_ms=200.0,
)


@pytest.fixture
def dep():
    return build_deployment(
        broker_ids=["b1", "b2"], seed=200, ping_policy=FAST_POLICY
    )


def bootstrap(dep):
    entity = dep.add_traced_entity("svc")
    tracker = dep.add_tracker("watcher")
    tracker.connect("b2")
    entity.start("b1")
    dep.sim.run(until=3_000)
    tracker.track("svc")
    dep.sim.run(until=6_000)
    return entity, tracker


class TestCrashDetection:
    def test_suspicion_then_failure(self, dep):
        entity, tracker = bootstrap(dep)
        entity.crash()
        dep.sim.run(until=40_000)

        suspicion = tracker.traces_of_type(TraceType.FAILURE_SUSPICION)
        failed = tracker.traces_of_type(TraceType.FAILED)
        assert len(suspicion) == 1
        assert len(failed) == 1
        assert suspicion[0].received_ms < failed[0].received_ms

        session = dep.manager_of("b1").session_of("svc")
        assert session.declared_failed
        assert session.detector.verdict is DetectorVerdict.FAILED

    def test_pings_stop_after_failure(self, dep):
        entity, _ = bootstrap(dep)
        entity.crash()
        dep.sim.run(until=40_000)
        pings = dep.monitor.count("trace.pings_sent")
        dep.sim.run(until=80_000)
        assert dep.monitor.count("trace.pings_sent") == pings

    def test_healthy_entity_never_suspected(self, dep):
        _, tracker = bootstrap(dep)
        dep.sim.run(until=60_000)
        assert not tracker.traces_of_type(TraceType.FAILURE_SUSPICION)
        assert not tracker.traces_of_type(TraceType.FAILED)

    def test_brief_outage_clears_suspicion(self, dep):
        entity, tracker = bootstrap(dep)
        entity.crash()
        # crash long enough for suspicion (3 misses) but not failure (6):
        # recover the moment the broker announces suspicion
        session = dep.manager_of("b1").session_of("svc")
        while not dep.monitor.events("failure_suspicion"):
            assert dep.sim.step(), "simulation drained before suspicion"
        entity.recover_from_crash()
        dep.sim.run(until=60_000)
        assert not session.declared_failed
        assert session.detector.verdict is DetectorVerdict.ALIVE
        # heartbeats resumed after recovery
        late = [t for t in tracker.traces_of_type(TraceType.ALLS_WELL)
                if t.received_ms > 10_000]
        assert late


class TestAdaptiveInterval:
    def test_interval_shrinks_on_misses(self, dep):
        entity, _ = bootstrap(dep)
        session = dep.manager_of("b1").session_of("svc")
        healthy_interval = session.current_interval_ms
        entity.crash()
        dep.sim.run(until=9_000)
        assert session.current_interval_ms < healthy_interval

    def test_interval_floors_at_min(self, dep):
        entity, _ = bootstrap(dep)
        session = dep.manager_of("b1").session_of("svc")
        entity.crash()
        dep.sim.run(until=40_000)
        assert session.current_interval_ms >= FAST_POLICY.min_interval_ms

    def test_detection_latency_faster_than_fixed_interval(self):
        """The adaptive scheme detects failure sooner than a fixed-interval
        pinger with the same thresholds (the §3.3 motivation)."""

        def detect_time(policy):
            dep = build_deployment(broker_ids=["b1"], seed=201, ping_policy=policy)
            entity = dep.add_traced_entity("svc")
            tracker = dep.add_tracker("w")
            tracker.connect("b1")
            entity.start("b1")
            dep.sim.run(until=5_000)
            tracker.track("svc")
            dep.sim.run(until=8_000)
            entity.crash()
            crash_time = dep.sim.now
            dep.sim.run(until=120_000)
            failed = tracker.traces_of_type(TraceType.FAILED)
            assert failed, "failure never detected"
            return failed[0].received_ms - crash_time

        adaptive = AdaptivePingPolicy(
            base_interval_ms=2_000.0, min_interval_ms=200.0,
            max_interval_ms=2_000.0, response_deadline_ms=200.0,
        )
        fixed = AdaptivePingPolicy(
            base_interval_ms=2_000.0, min_interval_ms=2_000.0,
            max_interval_ms=2_000.0, response_deadline_ms=200.0,
        )
        assert detect_time(adaptive) < detect_time(fixed)

    def test_stable_entity_interval_grows(self):
        policy = AdaptivePingPolicy(
            base_interval_ms=500.0, min_interval_ms=100.0,
            max_interval_ms=4_000.0, maturity_ms=10_000.0,
            response_deadline_ms=200.0,
        )
        dep = build_deployment(broker_ids=["b1"], seed=202, ping_policy=policy)
        entity = dep.add_traced_entity("svc")
        entity.start("b1")
        dep.sim.run(until=60_000)
        session = dep.manager_of("b1").session_of("svc")
        assert session.current_interval_ms > policy.base_interval_ms
