"""Tracing under adverse conditions: clock skew, lossy/reordering links."""

import pytest

from repro import build_deployment
from repro.tracing.failure import AdaptivePingPolicy
from repro.tracing.traces import TraceType
from repro.transport.tcp import tcp_profile
from repro.transport.udp import udp_profile
from repro.util.clock import NTPSkewModel


class TestClockSkew:
    def test_protocol_tolerates_paper_ntp_band(self):
        """With every node skewed by 30-100 ms, tokens still verify
        (the paper's skew-tolerant expiry check, section 4.3)."""
        dep = build_deployment(
            broker_ids=["b1", "b2"],
            seed=1000,
            ntp_model=NTPSkewModel(seed=5),
            skew_tolerance_ms=100.0,
        )
        entity = dep.add_traced_entity("svc")
        tracker = dep.add_tracker("w")
        tracker.connect("b2")
        entity.start("b1")
        dep.sim.run(until=3_000)
        tracker.track("svc")
        dep.sim.run(until=30_000)
        assert tracker.traces_of_type(TraceType.ALLS_WELL)
        assert dep.monitor.count("auth.invalid_token") == 0
        assert dep.monitor.count("tracker.tokens_rejected") == 0

    def test_skew_beyond_tolerance_rejects_tokens(self):
        """If a verifier's clock runs far ahead, fresh tokens can look
        expired — the failure mode the NTP bound prevents."""
        dep = build_deployment(broker_ids=["b1", "b2"], seed=1001)
        entity = dep.add_traced_entity("svc")
        entity.token_validity_ms = 5_000.0
        tracker = dep.add_tracker("w")
        tracker.connect("b2")
        entity.start("b1")
        dep.sim.run(until=3_000)
        # wrench the forwarding broker's clock one minute ahead
        dep.network.machine("machine-b2").clock.offset_ms = 60_000.0
        tracker.track("svc")
        dep.sim.run(until=20_000)
        assert not tracker.traces_of_type(TraceType.ALLS_WELL)
        assert dep.monitor.count("auth.invalid_token") > 0

    def test_latency_measurement_immune_to_skew(self):
        """Colocating entity and measuring tracker removes skew from the
        latency math — the paper's measurement design, verified."""
        dep = build_deployment(
            broker_ids=["b1"],
            seed=1002,
            ntp_model=NTPSkewModel(seed=9),
        )
        entity = dep.add_traced_entity("svc", machine_name="shared")
        tracker = dep.add_tracker("w", machine_name="shared")
        tracker.connect("b1")
        entity.start("b1")
        dep.sim.run(until=3_000)
        tracker.track("svc")
        dep.sim.run(until=30_000)
        latencies = tracker.latencies(TraceType.ALLS_WELL)
        assert latencies
        # all positive and plausible despite the broker's skewed clock
        assert all(20.0 < latency < 300.0 for latency in latencies)


class TestLossyNetworks:
    def test_udp_loss_shows_in_network_metrics(self):
        """Dropped pings/responses surface as a nonzero measured loss rate."""
        dep = build_deployment(
            broker_ids=["b1"],
            seed=1003,
            profile=udp_profile(loss_probability=0.15),
            ping_policy=AdaptivePingPolicy(
                base_interval_ms=500.0, min_interval_ms=200.0,
                max_interval_ms=500.0, response_deadline_ms=250.0,
                # lossy links must not spiral into failure declarations
            ),
        )
        # avoid false failure declarations under 15% loss
        from repro.tracing.failure import FailureDetector

        for manager in dep.managers.values():
            manager.detector_factory = lambda: FailureDetector(
                suspicion_threshold=5, failure_threshold=10
            )
        entity = dep.add_traced_entity("svc")
        tracker = dep.add_tracker("w")
        tracker.connect("b1")
        entity.start("b1")
        dep.sim.run(until=3_000)
        tracker.track("svc")
        dep.sim.run(until=120_000)

        metrics = tracker.traces_of_type(TraceType.NETWORK_METRICS)
        assert metrics
        measured_loss = metrics[-1].payload["loss_rate"]
        assert measured_loss > 0.0

    def test_tcp_retransmission_keeps_stream_complete(self):
        """A lossy link under TCP delivers every trace, just later."""
        dep = build_deployment(
            broker_ids=["b1", "b2"],
            seed=1004,
            profile=tcp_profile(loss_probability=0.1, retransmit_timeout_ms=30.0),
        )
        entity = dep.add_traced_entity("svc")
        tracker = dep.add_tracker("w")
        tracker.connect("b2")
        entity.start("b1")
        dep.sim.run(until=3_000)
        tracker.track("svc")
        dep.sim.run(until=60_000)
        published = dep.monitor.count("trace.published.ALLS_WELL")
        received = dep.monitor.count("tracker.traces_received.ALLS_WELL")
        assert published > 10
        assert received == published
