"""Extension features: topic renewal, discovered startup, gap detection."""

import pytest

from repro import build_deployment
from repro.errors import RegistrationError
from repro.messaging.discovery import PlacementPolicy
from repro.tracing.traces import TraceType
from repro.transport.udp import udp_profile


@pytest.fixture
def dep():
    return build_deployment(broker_ids=["b1", "b2"], seed=1300)


class TestTopicRenewal:
    def test_owner_extends_lifetime(self, dep):
        entity = dep.add_traced_entity("svc")
        entity.topic_lifetime_ms = 60_000.0
        dep.sim.run_process(entity.create_trace_topic())
        old_expiry = entity.advertisement.lifetime.expires_ms
        dep.sim.run_process(entity.renew_topic(120_000.0))
        assert entity.advertisement.lifetime.expires_ms == old_expiry + 120_000.0
        assert dep.monitor.count("tdn.topics_renewed") == 1

    def test_renewed_topic_discoverable_past_original_expiry(self, dep):
        entity = dep.add_traced_entity("svc")
        entity.topic_lifetime_ms = 20_000.0
        dep.sim.run_process(entity.create_trace_topic())
        dep.sim.run_process(entity.renew_topic(600_000.0))
        dep.sim.run(until=100_000.0)  # past the original 20s lifetime
        tracker = dep.add_tracker("w")
        tracker.connect("b2")
        tracker.track("svc")
        dep.sim.run(until=110_000.0)
        assert dep.monitor.count("tracker.tracking") == 1

    def test_non_owner_cannot_renew(self, dep):
        entity = dep.add_traced_entity("svc")
        imposter = dep.add_traced_entity("imposter")
        dep.sim.run_process(entity.create_trace_topic())
        payload = {
            "renew": entity.advertisement.trace_topic.hex,
            "additional_lifetime_ms": 1e9,
        }
        forged = imposter.credentials.sign(payload)
        with pytest.raises(RegistrationError):
            dep.sim.run_process(
                dep.tdn.renew_topic(entity.advertisement, forged, 1e9)
            )

    def test_expired_topic_cannot_be_renewed(self, dep):
        entity = dep.add_traced_entity("svc")
        entity.topic_lifetime_ms = 1_000.0
        dep.sim.run_process(entity.create_trace_topic())
        dep.sim.run(until=10_000.0)  # lifetime elapsed
        with pytest.raises(RegistrationError):
            dep.sim.run_process(entity.renew_topic(60_000.0))

    def test_zero_extension_rejected(self, dep):
        entity = dep.add_traced_entity("svc")
        dep.sim.run_process(entity.create_trace_topic())
        with pytest.raises(RegistrationError):
            dep.sim.run_process(entity.renew_topic(0.0))

    def test_renewal_replicates(self, dep):
        entity = dep.add_traced_entity("svc")
        dep.sim.run_process(entity.create_trace_topic())
        dep.sim.run_process(entity.renew_topic(60_000.0))
        dep.sim.run(until=dep.sim.now + 100.0)  # replication callbacks
        for node in dep.tdn.nodes:
            stored = node.store.get(entity.advertisement.trace_topic, dep.sim.now)
            assert stored is not None
            assert stored.lifetime.expires_ms == entity.advertisement.lifetime.expires_ms


class TestDiscoveredStartup:
    def test_entity_finds_broker_via_discovery(self, dep):
        entity = dep.add_traced_entity("svc")
        proc = entity.start_discovered(dep.discovery)
        dep.sim.run(until=5_000)
        assert proc.ok
        assert entity.session_id is not None
        assert entity.client.broker.broker_id in ("b1", "b2")

    def test_least_loaded_policy(self, dep):
        # load up b1 with clients
        for i in range(3):
            client = dep.network.add_client(f"filler-{i}")
            dep.network.connect_client(client, "b1")
        entity = dep.add_traced_entity("svc")
        proc = entity.start_discovered(
            dep.discovery, policy=PlacementPolicy.LEAST_LOADED
        )
        dep.sim.run(until=5_000)
        assert proc.ok
        assert entity.client.broker.broker_id == "b2"


class TestGapDetection:
    def test_no_gaps_on_reliable_transport(self, dep):
        entity = dep.add_traced_entity("svc")
        tracker = dep.add_tracker("w")
        tracker.connect("b2")
        entity.start("b1")
        dep.sim.run(until=3_000)
        tracker.track("svc")
        dep.sim.run(until=40_000)
        assert tracker.missed_trace_count == 0

    def test_gaps_detected_on_lossy_udp(self):
        # broker-to-broker links are lossy UDP; the entity and tracker use
        # reliable client links (transport independence lets each leg pick
        # its own transport)
        from repro.transport.tcp import tcp_profile

        dep = build_deployment(
            broker_ids=["b1", "b2"],
            seed=1301,
            profile=udp_profile(loss_probability=0.25),
        )
        entity = dep.add_traced_entity("svc")
        tracker = dep.add_tracker("w")
        tracker.connect("b2", transport_profile=tcp_profile())
        entity.start("b1", transport_profile=tcp_profile())
        dep.sim.run(until=5_000)
        tracker.track("svc")
        dep.sim.run(until=120_000)
        received = len(tracker.received)
        assert received > 0
        # with 25% per-link loss across several links, some traces vanish
        assert tracker.missed_trace_count > 0
        assert dep.monitor.count("tracker.traces_missed") == tracker.missed_trace_count


class TestRegistrationRetries:
    def test_lossy_link_registration_eventually_succeeds(self):
        """A dropped registration request is retried until it lands."""
        dep = build_deployment(
            broker_ids=["b1"],
            seed=1302,
            profile=udp_profile(loss_probability=0.35),
        )
        entity = dep.add_traced_entity("svc")
        entity.registration_timeout_ms = 2_000.0
        entity.registration_attempts = 8
        proc = entity.start("b1")
        dep.sim.run(until=60_000)
        assert proc.ok, proc._exception
        assert entity.session_id is not None

    def test_retries_counted(self):
        dep = build_deployment(
            broker_ids=["b1"],
            seed=1304,
            profile=udp_profile(loss_probability=0.6),
        )
        entity = dep.add_traced_entity("svc")
        entity.registration_timeout_ms = 1_000.0
        entity.registration_attempts = 10
        entity.start("b1")
        dep.sim.run(until=60_000)
        # with 60% loss per leg, at least one retry is near-certain
        assert dep.monitor.count("entity.registration_retries") >= 1


class TestUntrack:
    def test_untrack_stops_delivery_and_publication(self, dep):
        entity = dep.add_traced_entity("svc")
        tracker = dep.add_tracker("w")
        tracker.connect("b2")
        entity.start("b1")
        dep.sim.run(until=3_000)
        tracker.track("svc")
        dep.sim.run(until=15_000)
        assert tracker.traces_of_type(TraceType.ALLS_WELL)

        proc = tracker.untrack("svc")
        dep.sim.run(until=17_000)
        assert proc.value is True
        received_at_untrack = len(tracker.received)
        published_at_untrack = dep.monitor.count("trace.published.ALLS_WELL")

        dep.sim.run(until=40_000)
        # nothing more delivered to the tracker ...
        assert len(tracker.received) == received_at_untrack
        # ... and (being the only tracker) publication stopped at once,
        # well before the interest TTL would have expired
        published_after = dep.monitor.count("trace.published.ALLS_WELL")
        assert published_after <= published_at_untrack + 2
        assert dep.monitor.count("trace.suppressed_no_interest") > 0

    def test_untrack_unknown_entity_returns_false(self, dep):
        tracker = dep.add_tracker("w")
        tracker.connect("b2")
        proc = tracker.untrack("ghost")
        dep.sim.run(until=1_000)
        assert proc.value is False

    def test_other_trackers_unaffected(self, dep):
        entity = dep.add_traced_entity("svc")
        stayer = dep.add_tracker("stayer")
        leaver = dep.add_tracker("leaver")
        stayer.connect("b2")
        leaver.connect("b2")
        entity.start("b1")
        dep.sim.run(until=3_000)
        stayer.track("svc")
        leaver.track("svc")
        dep.sim.run(until=10_000)
        leaver.untrack("svc")
        dep.sim.run(until=30_000)
        late = [t for t in stayer.traces_of_type(TraceType.ALLS_WELL)
                if t.received_ms > 12_000]
        assert late
