"""Authorization end to end: discovery restrictions, tokens, tampering."""

import pytest

from repro import build_deployment
from repro.errors import DiscoveryError
from repro.tdn.query import DiscoveryRestrictions
from repro.tracing.traces import TraceType


@pytest.fixture
def dep():
    return build_deployment(broker_ids=["b1", "b2"], seed=400)


class TestDiscoveryRestrictions:
    def test_unauthorized_tracker_cannot_proceed(self, dep):
        entity = dep.add_traced_entity(
            "svc", restrictions=DiscoveryRestrictions.allow_only("friend")
        )
        stranger = dep.add_tracker("stranger")
        stranger.connect("b2")
        entity.start("b1")
        dep.sim.run(until=3_000)
        proc = stranger.track("svc")
        dep.sim.run(until=5_000)
        assert proc.triggered and not proc.ok
        with pytest.raises(DiscoveryError):
            _ = proc.value

    def test_authorized_tracker_proceeds(self, dep):
        entity = dep.add_traced_entity(
            "svc", restrictions=DiscoveryRestrictions.allow_only("friend")
        )
        friend = dep.add_tracker("friend")
        friend.connect("b2")
        entity.start("b1")
        dep.sim.run(until=3_000)
        friend.track("svc")
        dep.sim.run(until=20_000)
        assert friend.traces_of_type(TraceType.ALLS_WELL)


class TestTokenEnforcement:
    def test_traces_carry_valid_tokens(self, dep):
        entity = dep.add_traced_entity("svc")
        tracker = dep.add_tracker("w")
        tracker.connect("b2")
        entity.start("b1")
        dep.sim.run(until=3_000)
        tracker.track("svc")
        dep.sim.run(until=20_000)
        assert tracker.received
        assert dep.monitor.count("tracker.tokens_rejected") == 0
        assert dep.monitor.count("auth.invalid_token") == 0

    def test_expired_token_stops_publication(self):
        dep = build_deployment(broker_ids=["b1"], seed=401)
        entity = dep.add_traced_entity("svc")
        entity.token_validity_ms = 10_000.0  # short-lived token
        tracker = dep.add_tracker("w")
        tracker.connect("b1")
        entity.start("b1")
        dep.sim.run(until=3_000)
        tracker.track("svc")
        dep.sim.run(until=60_000)
        # publication halted once the token expired (entity never refreshed)
        assert dep.monitor.count("trace.token_expired") > 0
        last_received = max(t.received_ms for t in tracker.received)
        assert last_received < 12_000.0

    def test_token_refresh_restores_publication(self):
        dep = build_deployment(broker_ids=["b1"], seed=402)
        entity = dep.add_traced_entity("svc")
        entity.token_validity_ms = 10_000.0
        tracker = dep.add_tracker("w")
        tracker.connect("b1")
        entity.start("b1")
        dep.sim.run(until=3_000)
        tracker.track("svc")
        dep.sim.run(until=15_000)  # token now expired

        def refresh():
            yield from entity.refresh_token()

        dep.sim.process(refresh())
        dep.sim.run(until=40_000)
        assert any(t.received_ms > 16_000 for t in tracker.received)


class TestMessageIntegrity:
    def test_tampered_entity_message_rejected(self, dep):
        """A message whose signature covers different bytes is dropped."""
        entity = dep.add_traced_entity("svc")
        entity.start("b1")
        dep.sim.run(until=3_000)
        session = dep.manager_of("b1").session_of("svc")
        topic = session.topics.entity_to_broker(session.session_id)

        body = {"kind": "state_transition", "state": "SHUTDOWN", "stamp_ms": 0.0}
        envelope = entity.credentials.sign({"something": "else"})
        entity.client.publish(topic, body, signature=envelope.to_dict())
        dep.sim.run(until=6_000)
        assert dep.monitor.count("trace.entity_messages_rejected") >= 1
        assert session.entity_state.value != "SHUTDOWN"

    def test_unsigned_entity_message_rejected(self, dep):
        entity = dep.add_traced_entity("svc")
        entity.start("b1")
        dep.sim.run(until=3_000)
        session = dep.manager_of("b1").session_of("svc")
        topic = session.topics.entity_to_broker(session.session_id)
        entity.client.publish(
            topic, {"kind": "state_transition", "state": "SHUTDOWN"}
        )
        dep.sim.run(until=6_000)
        assert session.entity_state.value != "SHUTDOWN"

    def test_message_signed_by_other_key_rejected(self, dep):
        """Another registered entity cannot impersonate svc."""
        entity = dep.add_traced_entity("svc")
        imposter = dep.add_traced_entity("imposter")
        entity.start("b1")
        imposter.start("b1")
        dep.sim.run(until=5_000)
        session = dep.manager_of("b1").session_of("svc")
        topic = session.topics.entity_to_broker(session.session_id)

        body = {"kind": "disable_tracing", "stamp_ms": 0.0}
        envelope = imposter.credentials.sign(body)
        imposter.client.publish(topic, body, signature=envelope.to_dict())
        dep.sim.run(until=8_000)
        assert session.active  # the forged disable was ignored
