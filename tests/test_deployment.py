"""Tests for the one-call deployment builder."""

import pytest

from repro import build_deployment
from repro.transport.udp import udp_profile


class TestBuildDeployment:
    def test_chain_topology(self):
        dep = build_deployment(broker_ids=["a", "b", "c"], topology="chain")
        assert dep.network.hop_distance("a", "c") == 2

    def test_star_topology(self):
        dep = build_deployment(broker_ids=["hub", "s1", "s2"], topology="star")
        assert dep.network.hop_distance("s1", "s2") == 2
        assert dep.network.hop_distance("hub", "s1") == 1

    def test_none_topology_with_extra_links(self):
        dep = build_deployment(
            broker_ids=["a", "b"], topology="none", extra_links=[("a", "b")]
        )
        assert dep.network.hop_distance("a", "b") == 1

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            build_deployment(broker_ids=["a"], topology="mesh-of-doom")

    def test_every_broker_has_manager_and_guard(self):
        dep = build_deployment(broker_ids=["a", "b"])
        for broker_id in ("a", "b"):
            assert broker_id in dep.managers
            assert dep.network.broker(broker_id).publish_guards

    def test_brokers_registered_with_discovery(self):
        dep = build_deployment(broker_ids=["a", "b"])
        assert dep.discovery.known_brokers() == ["a", "b"]

    def test_tdn_cluster_size(self):
        dep = build_deployment(broker_ids=["a"], tdn_node_count=3)
        assert len(dep.tdn.nodes) == 3

    def test_verifier_trusts_all_tdns(self):
        dep = build_deployment(broker_ids=["a"], tdn_node_count=2)
        assert set(dep.token_verifier.trusted_tdn_keys) == {"tdn-0", "tdn-1"}

    def test_profile_is_default_for_links(self):
        dep = build_deployment(broker_ids=["a", "b"], profile=udp_profile())
        assert dep.network.default_profile.name == "UDP"


class TestPrincipalFactories:
    def test_entities_tracked_in_registry(self):
        dep = build_deployment(broker_ids=["a"])
        entity = dep.add_traced_entity("svc")
        assert dep.entities["svc"] is entity

    def test_trackers_tracked_in_registry(self):
        dep = build_deployment(broker_ids=["a"])
        tracker = dep.add_tracker("w")
        assert dep.trackers["w"] is tracker

    def test_credentials_issued_by_deployment_ca(self):
        dep = build_deployment(broker_ids=["a"])
        entity = dep.add_traced_entity("svc")
        dep.ca.verify(entity.credentials.certificate, now_ms=0.0)

    def test_colocation_by_machine_name(self):
        dep = build_deployment(broker_ids=["a"])
        e = dep.add_traced_entity("svc", machine_name="host")
        t = dep.add_tracker("w", machine_name="host")
        assert e.machine is t.machine

    def test_manager_of(self):
        dep = build_deployment(broker_ids=["a"])
        assert dep.manager_of("a").broker.broker_id == "a"
